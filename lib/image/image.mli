(** SECF — a small container format for compressed executables.

    A ROM image in the Wolfe–Chanin organisation must ship, besides the
    compressed text, everything the refill engine needs: the algorithm
    identity, the decompression tables (Markov model or dictionary +
    Huffman lengths), and the LAT. SECF packages exactly that, with a
    CRC-32 over the contents.

    Layout (v1): magic "SECF", version, ISA tag, algorithm tag, a LAT
    section, an algorithm payload section (the [Samc]/[Sadc] wire forms,
    which embed their own block payloads), and a trailing CRC-32.

    Layout (v2): as v1 plus a block-CRC kind byte after the algorithm tag
    and a per-block CRC table ({!Crc8} or {!Crc16} over each block's
    compressed payload bytes) between the payload and the trailing CRC-32.
    The whole-image CRC-32 says only that the image is damaged somewhere;
    the per-block tags let the refill engine localise damage to a single
    cache line and degrade gracefully instead of failing the whole image.
    v1 images remain readable, and writing an image without block CRCs
    produces bytes identical to v1. *)

type isa = Mips | X86

type payload =
  | Samc of Ccomp_core.Samc.compressed
  | Sadc_mips of Ccomp_core.Sadc.Mips.compressed
  | Sadc_x86 of Ccomp_core.Sadc.X86.compressed

type block_crc_kind = Crc8_tags | Crc16_tags

type t = {
  isa : isa;
  payload : payload;
  lat : Ccomp_memsys.Lat.t;
  block_crcs : (block_crc_kind * int array) option;
      (** per-block integrity tags over the compressed payload bytes;
          [None] writes a v1 image *)
}

val of_samc : isa:isa -> Ccomp_core.Samc.compressed -> t
(** Builds the image, deriving the LAT from the block sizes. *)

val of_sadc_mips : Ccomp_core.Sadc.Mips.compressed -> t

val of_sadc_x86 : Ccomp_core.Sadc.X86.compressed -> t

val with_block_crcs : block_crc_kind -> t -> t
(** Recompute and attach per-block tags; {!write} then emits a v2 image. *)

val without_block_crcs : t -> t

val block_count : t -> int

val block_payload : t -> int -> string
(** Compressed payload bytes of one block, as covered by its tag. *)

val verify_block_crcs : t -> (unit, Ccomp_util.Decode_error.t) result
(** [Ok ()] when there are no tags or every tag matches; otherwise
    [Crc_mismatch] naming the first corrupt block. *)

val locate_corruption : t -> int list
(** Indices of blocks whose payload no longer matches its tag, in
    ascending order. Empty for v1 images (no tags to check against). *)

val write : t -> string

val read : string -> (t, string) result
(** Checks magic, version and CRC, then decodes the payload. The error
    string names which check failed (magic vs version vs CRC vs payload
    decode). [read = read_checked] with errors rendered by
    {!Ccomp_util.Decode_error.to_string}. *)

val read_checked : ?verify_crc:bool -> string -> (t, Ccomp_util.Decode_error.t) result
(** Typed variant. [~verify_crc:false] skips the whole-image CRC-32 so a
    fault campaign can exercise per-block localisation on a damaged image;
    the per-block tags are still read (and checked by
    {!decompress_checked}). Total: never raises. *)

val decompress : ?jobs:int -> t -> string
(** Reconstruct the original text section. [jobs] (default 1) fans
    per-block decoding over that many domains; the output is identical
    for every value. *)

val decompress_checked : ?max_output:int -> t -> (string, Ccomp_util.Decode_error.t) result
(** Verifies per-block tags (when present), then decodes totally: typed
    error instead of any exception, output capped by the declared original
    size (or [max_output]). *)

val total_bytes : t -> int
(** [String.length (write t)] — the full ROM footprint including tables
    and LAT. *)

(** Byte ranges of a written image, for section-targeted fault
    injection. *)
type section =
  | Sec_magic
  | Sec_header  (** version, ISA, algorithm (and CRC-kind in v2) bytes *)
  | Sec_lat
  | Sec_tables  (** model / dictionary tables preceding the first block *)
  | Sec_block of int  (** one block's compressed payload *)
  | Sec_block_crcs  (** the v2 per-block tag table *)
  | Sec_trailer_crc

val section_name : section -> string

val sections : t -> (section * (int * int)) list
(** [(section, (offset, length))] spans into [write t], in layout order.
    Spans cover the whole image except the blocks' 2- or 4-byte length
    prefixes (counted in neither [Sec_tables] nor [Sec_block]). *)

val describe : t -> string
(** One-line human summary (ISA, algorithm, block counts, sizes), plus a
    second line describing the integrity tags for v2 images. *)
