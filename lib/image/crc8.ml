(* CRC-8/ATM (poly 0x07), MSB-first. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           if !c land 0x80 <> 0 then c := ((!c lsl 1) lxor 0x07) land 0xff
           else c := (!c lsl 1) land 0xff
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc land 0xff) in
  String.iter (fun ch -> c := table.(!c lxor Char.code ch)) s;
  !c

let of_string s = update 0 s
