(** CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xffff, MSB-first) for
    per-block integrity tags in SECF v2 images — the two-byte alternative
    to {!Crc8} when stronger burst detection is worth 6% tag overhead on
    32-byte lines. *)

val of_string : string -> int
(** CRC of a whole string, in \[0, 65535\]. *)

val update : int -> string -> int
(** Incremental form over the same running state as {!of_string}. *)
