module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Lat = Ccomp_memsys.Lat
module Decode_error = Ccomp_util.Decode_error
module Events = Ccomp_obs.Events

type isa = Mips | X86

type payload =
  | Samc of Samc.compressed
  | Sadc_mips of Sadc.Mips.compressed
  | Sadc_x86 of Sadc.X86.compressed

type block_crc_kind = Crc8_tags | Crc16_tags

type t = {
  isa : isa;
  payload : payload;
  lat : Lat.t;
  block_crcs : (block_crc_kind * int array) option;
}

let magic = "SECF"
let version = 1
let version_block_crc = 2

let of_samc ~isa z =
  { isa; payload = Samc z; lat = Lat.of_blocks z.Samc.blocks; block_crcs = None }

let of_sadc_mips z =
  let lengths = Array.init (Sadc.Mips.block_count z) (Sadc.Mips.block_payload_bytes z) in
  { isa = Mips; payload = Sadc_mips z; lat = Lat.build lengths; block_crcs = None }

let of_sadc_x86 z =
  let lengths = Array.init (Sadc.X86.block_count z) (Sadc.X86.block_payload_bytes z) in
  { isa = X86; payload = Sadc_x86 z; lat = Lat.build lengths; block_crcs = None }

let isa_tag = function Mips -> 0 | X86 -> 1

let isa_of_tag = function 0 -> Some Mips | 1 -> Some X86 | _ -> None

let payload_tag = function Samc _ -> 0 | Sadc_mips _ -> 1 | Sadc_x86 _ -> 2

let crc_kind_tag = function Crc8_tags -> 1 | Crc16_tags -> 2

let crc_kind_of_tag = function 1 -> Some Crc8_tags | 2 -> Some Crc16_tags | _ -> None

let crc_kind_bytes = function Crc8_tags -> 1 | Crc16_tags -> 2

let crc_kind_name = function Crc8_tags -> "crc8" | Crc16_tags -> "crc16"

let block_count t =
  match t.payload with
  | Samc z -> Array.length z.Samc.blocks
  | Sadc_mips z -> Sadc.Mips.block_count z
  | Sadc_x86 z -> Sadc.X86.block_count z

let block_payload t b =
  match t.payload with
  | Samc z -> z.Samc.blocks.(b)
  | Sadc_mips z -> Sadc.Mips.block_payload z b
  | Sadc_x86 z -> Sadc.X86.block_payload z b

let block_crc kind payload =
  match kind with Crc8_tags -> Crc8.of_string payload | Crc16_tags -> Crc16.of_string payload

let with_block_crcs kind t =
  let crcs = Array.init (block_count t) (fun b -> block_crc kind (block_payload t b)) in
  { t with block_crcs = Some (kind, crcs) }

let without_block_crcs t = { t with block_crcs = None }

(* Per-block verification against the stored tags: the refill engine's
   view of integrity, able to localise corruption to one cache line
   (unlike the whole-image CRC-32, which only says "somewhere"). *)
let locate_corruption t =
  match t.block_crcs with
  | None -> []
  | Some (kind, crcs) ->
    let bad = ref [] in
    for b = Array.length crcs - 1 downto 0 do
      if block_crc kind (block_payload t b) <> crcs.(b) then bad := b :: !bad
    done;
    !bad

let verify_block_crcs t =
  match t.block_crcs with
  | None -> Ok ()
  | Some (kind, crcs) -> (
    match locate_corruption t with
    | [] -> Ok ()
    | b :: _ ->
      Events.error
        ~fields:[ ("section", Printf.sprintf "block %d" b); ("kind", crc_kind_name kind) ]
        "image.crc_mismatch";
      Error
        (Decode_error.Crc_mismatch
           {
             section = Printf.sprintf "block %d (%s)" b (crc_kind_name kind);
             expected = crcs.(b);
             got = block_crc kind (block_payload t b);
           }))

let serialize_payload t =
  match t.payload with
  | Samc z -> Samc.serialize z
  | Sadc_mips z -> Sadc.Mips.serialize z
  | Sadc_x86 z -> Sadc.X86.serialize z

let write t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  (match t.block_crcs with
  | None -> Buffer.add_char b (Char.chr version)
  | Some _ -> Buffer.add_char b (Char.chr version_block_crc));
  Buffer.add_char b (Char.chr (isa_tag t.isa));
  Buffer.add_char b (Char.chr (payload_tag t.payload));
  (match t.block_crcs with
  | None -> ()
  | Some (kind, _) -> Buffer.add_char b (Char.chr (crc_kind_tag kind)));
  Buffer.add_string b (Lat.serialize t.lat);
  Buffer.add_string b (serialize_payload t);
  (match t.block_crcs with
  | None -> ()
  | Some (kind, crcs) ->
    Array.iter
      (fun crc ->
        if kind = Crc16_tags then Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
        Buffer.add_char b (Char.chr (crc land 0xff)))
      crcs);
  let body = Buffer.contents b in
  let crc = Crc32.of_string body in
  let tail = Bytes.create 4 in
  Bytes.set tail 0 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff));
  Bytes.set tail 1 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff));
  Bytes.set tail 2 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff));
  Bytes.set tail 3 (Char.chr (Int32.to_int crc land 0xff));
  body ^ Bytes.to_string tail

let read_checked ?(verify_crc = true) s =
  let ( let* ) = Result.bind in
  let len = String.length s in
  if len < 11 then Error (Decode_error.Truncated "image header")
  else if String.sub s 0 4 <> magic then Error Decode_error.Bad_magic
  else begin
    let ver = Char.code s.[4] in
    if ver <> version && ver <> version_block_crc then Error (Decode_error.Bad_version ver)
    else begin
      let* () =
        if not verify_crc then Ok ()
        else begin
          let body = String.sub s 0 (len - 4) in
          let crc = Crc32.of_string body in
          let stored =
            Int32.logor
              (Int32.shift_left (Int32.of_int (Char.code s.[len - 4])) 24)
              (Int32.of_int
                 ((Char.code s.[len - 3] lsl 16) lor (Char.code s.[len - 2] lsl 8)
                 lor Char.code s.[len - 1]))
          in
          if crc <> stored then begin
            Events.error ~fields:[ ("section", "image") ] "image.crc_mismatch";
            Error
              (Decode_error.Crc_mismatch
                 {
                   section = "image (crc32)";
                   (* truncate to 31 bits only for display; equality above
                      is exact on the int32s *)
                   expected = Int32.to_int (Int32.logand stored 0x7FFFFFFFl);
                   got = Int32.to_int (Int32.logand crc 0x7FFFFFFFl);
                 })
          end
          else Ok ()
        end
      in
      let body = String.sub s 0 (len - 4) in
      match isa_of_tag (Char.code s.[5]) with
      | None -> Error (Decode_error.Malformed "unknown ISA tag")
      | Some isa ->
        let* kind =
          if ver = version then Ok None
          else
            match crc_kind_of_tag (Char.code s.[7]) with
            | Some k -> Ok (Some k)
            | None -> Error (Decode_error.Malformed "unknown block-CRC kind")
        in
        let lat_pos = if ver = version then 7 else 8 in
        Decode_error.protect ~section:"image payload" (fun () ->
            let lat, pos = Lat.deserialize body ~pos:lat_pos in
            let payload, pos =
              match Char.code s.[6] with
              | 0 ->
                let z, pos = Samc.deserialize body ~pos in
                (Samc z, pos)
              | 1 ->
                let z, pos = Sadc.Mips.deserialize body ~pos in
                (Sadc_mips z, pos)
              | 2 ->
                let z, pos = Sadc.X86.deserialize body ~pos in
                (Sadc_x86 z, pos)
              | _ -> Decode_error.fail (Decode_error.Malformed "unknown algorithm tag")
            in
            let t = { isa; payload; lat; block_crcs = None } in
            match kind with
            | None -> t
            | Some kind ->
              let n = block_count t in
              let width = crc_kind_bytes kind in
              if pos + (n * width) > String.length body then
                Decode_error.truncated "block-CRC table";
              let crcs =
                Array.init n (fun b ->
                    let o = pos + (b * width) in
                    if width = 2 then (Char.code body.[o] lsl 8) lor Char.code body.[o + 1]
                    else Char.code body.[o])
              in
              { t with block_crcs = Some (kind, crcs) })
    end
  end

let read s = Result.map_error Decode_error.to_string (read_checked s)

let decompress ?jobs t =
  match t.payload with
  | Samc z -> Samc.decompress ?jobs z
  | Sadc_mips z -> Sadc.Mips.decompress ?jobs z
  | Sadc_x86 z -> Sadc.X86.decompress ?jobs z

let decompress_checked ?max_output t =
  match verify_block_crcs t with
  | Error e -> Error e
  | Ok () -> (
    match t.payload with
    | Samc z -> Samc.decompress_checked ?max_output z
    | Sadc_mips z -> Sadc.Mips.decompress_checked ?max_output z
    | Sadc_x86 z -> Sadc.X86.decompress_checked ?max_output z)

let total_bytes t = String.length (write t)

(* --- section map -------------------------------------------------------- *)

type section =
  | Sec_magic
  | Sec_header
  | Sec_lat
  | Sec_tables
  | Sec_block of int
  | Sec_block_crcs
  | Sec_trailer_crc

let section_name = function
  | Sec_magic -> "magic"
  | Sec_header -> "header"
  | Sec_lat -> "lat"
  | Sec_tables -> "tables"
  | Sec_block b -> Printf.sprintf "block %d" b
  | Sec_block_crcs -> "block-crc table"
  | Sec_trailer_crc -> "crc32"

let sections t =
  let header_len = match t.block_crcs with None -> 3 | Some _ -> 4 in
  let lat_off = 4 + header_len in
  let lat_len = String.length (Lat.serialize t.lat) in
  let payload_off = lat_off + lat_len in
  let payload = serialize_payload t in
  let payload_len = String.length payload in
  let spans =
    match t.payload with
    | Samc z -> Samc.block_spans z
    | Sadc_mips z -> Sadc.Mips.block_spans z
    | Sadc_x86 z -> Sadc.X86.block_spans z
  in
  let tables_len =
    if Array.length spans = 0 then payload_len
    else fst spans.(0) - (match t.payload with Samc _ -> 2 | _ -> 4)
  in
  let blocks =
    Array.to_list
      (Array.mapi (fun b (off, len) -> (Sec_block b, (payload_off + off, len))) spans)
  in
  let crc_table =
    match t.block_crcs with
    | None -> []
    | Some (kind, crcs) ->
      [ (Sec_block_crcs, (payload_off + payload_len, Array.length crcs * crc_kind_bytes kind)) ]
  in
  let crc_table_len = match crc_table with [] -> 0 | (_, (_, l)) :: _ -> l in
  [
    (Sec_magic, (0, 4));
    (Sec_header, (4, header_len));
    (Sec_lat, (lat_off, lat_len));
    (Sec_tables, (payload_off, tables_len));
  ]
  @ blocks @ crc_table
  @ [ (Sec_trailer_crc, (payload_off + payload_len + crc_table_len, 4)) ]

let describe t =
  let isa = match t.isa with Mips -> "mips" | X86 -> "x86" in
  let base =
    match t.payload with
    | Samc z ->
      Printf.sprintf "SECF %s samc: %d blocks, %d code bytes, %d model bytes, ratio %.3f" isa
        (Array.length z.Samc.blocks) (Samc.code_bytes z) (Samc.model_bytes z) (Samc.ratio z)
    | Sadc_mips z ->
      Printf.sprintf "SECF %s sadc: %d blocks, %d code bytes, %d dict bytes, ratio %.3f" isa
        (Sadc.Mips.block_count z) (Sadc.Mips.code_bytes z) (Sadc.Mips.dict_bytes z)
        (Sadc.Mips.ratio z)
    | Sadc_x86 z ->
      Printf.sprintf "SECF %s sadc: %d blocks, %d code bytes, %d dict bytes, ratio %.3f" isa
        (Sadc.X86.block_count z) (Sadc.X86.code_bytes z) (Sadc.X86.dict_bytes z)
        (Sadc.X86.ratio z)
  in
  match t.block_crcs with
  | None -> base
  | Some (kind, crcs) ->
    Printf.sprintf "%s\nper-block integrity: %s tags, %d blocks, %d tag bytes" base
      (crc_kind_name kind) (Array.length crcs)
      (Array.length crcs * crc_kind_bytes kind)
