(** CRC-8 (polynomial 0x07, MSB-first, zero init) for per-block integrity
    tags in SECF v2 images. One byte per 32-byte cache block keeps the tag
    overhead near 3%; any single-bit error in a block is detected with
    certainty (a CRC property), which is the fault model of ROM bit rot. *)

val of_string : string -> int
(** CRC of a whole string, in \[0, 255\]. *)

val update : int -> string -> int
(** Incremental form: [update (of_string a) b = of_string (a ^ b)]. *)
