(* CRC-16/CCITT-FALSE (poly 0x1021, init 0xffff), MSB-first. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (n lsl 8) in
         for _ = 1 to 8 do
           if !c land 0x8000 <> 0 then c := ((!c lsl 1) lxor 0x1021) land 0xffff
           else c := (!c lsl 1) land 0xffff
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc land 0xffff) in
  String.iter
    (fun ch -> c := ((!c lsl 8) land 0xffff) lxor table.(((!c lsr 8) lxor Char.code ch) land 0xff))
    s;
  !c

let of_string s = update 0xffff s
