type operands =
  | Op_none
  | Op_rd_rs_rt
  | Op_rd_rt_shamt
  | Op_rd_rt_rs
  | Op_rs_rt
  | Op_rd
  | Op_rs
  | Op_rd_rs
  | Op_rt_rs_imm
  | Op_rt_imm
  | Op_rt_base_offset
  | Op_rs_rt_branch
  | Op_rs_branch
  | Op_target

(* How the instruction is located in the MIPS encoding space. *)
type encoding =
  | Special of int (* opcode 0, funct field *)
  | Regimm of int (* opcode 1, rt field selects *)
  | Normal of int (* primary opcode, I-type *)
  | Jump of int (* primary opcode, J-type *)

type spec = { id : int; mnemonic : string; operands : operands }

(* Internal table carrying the encoding next to each spec. *)
let table : (string * encoding * operands) array =
  [|
    ("sll", Special 0x00, Op_rd_rt_shamt);
    ("srl", Special 0x02, Op_rd_rt_shamt);
    ("sra", Special 0x03, Op_rd_rt_shamt);
    ("sllv", Special 0x04, Op_rd_rt_rs);
    ("srlv", Special 0x06, Op_rd_rt_rs);
    ("srav", Special 0x07, Op_rd_rt_rs);
    ("jr", Special 0x08, Op_rs);
    ("jalr", Special 0x09, Op_rd_rs);
    ("syscall", Special 0x0c, Op_none);
    ("break", Special 0x0d, Op_none);
    ("mfhi", Special 0x10, Op_rd);
    ("mthi", Special 0x11, Op_rs);
    ("mflo", Special 0x12, Op_rd);
    ("mtlo", Special 0x13, Op_rs);
    ("mult", Special 0x18, Op_rs_rt);
    ("multu", Special 0x19, Op_rs_rt);
    ("div", Special 0x1a, Op_rs_rt);
    ("divu", Special 0x1b, Op_rs_rt);
    ("add", Special 0x20, Op_rd_rs_rt);
    ("addu", Special 0x21, Op_rd_rs_rt);
    ("sub", Special 0x22, Op_rd_rs_rt);
    ("subu", Special 0x23, Op_rd_rs_rt);
    ("and", Special 0x24, Op_rd_rs_rt);
    ("or", Special 0x25, Op_rd_rs_rt);
    ("xor", Special 0x26, Op_rd_rs_rt);
    ("nor", Special 0x27, Op_rd_rs_rt);
    ("slt", Special 0x2a, Op_rd_rs_rt);
    ("sltu", Special 0x2b, Op_rd_rs_rt);
    ("bltz", Regimm 0x00, Op_rs_branch);
    ("bgez", Regimm 0x01, Op_rs_branch);
    ("j", Jump 0x02, Op_target);
    ("jal", Jump 0x03, Op_target);
    ("beq", Normal 0x04, Op_rs_rt_branch);
    ("bne", Normal 0x05, Op_rs_rt_branch);
    ("blez", Normal 0x06, Op_rs_branch);
    ("bgtz", Normal 0x07, Op_rs_branch);
    ("addi", Normal 0x08, Op_rt_rs_imm);
    ("addiu", Normal 0x09, Op_rt_rs_imm);
    ("slti", Normal 0x0a, Op_rt_rs_imm);
    ("sltiu", Normal 0x0b, Op_rt_rs_imm);
    ("andi", Normal 0x0c, Op_rt_rs_imm);
    ("ori", Normal 0x0d, Op_rt_rs_imm);
    ("xori", Normal 0x0e, Op_rt_rs_imm);
    ("lui", Normal 0x0f, Op_rt_imm);
    ("lb", Normal 0x20, Op_rt_base_offset);
    ("lh", Normal 0x21, Op_rt_base_offset);
    ("lw", Normal 0x23, Op_rt_base_offset);
    ("lbu", Normal 0x24, Op_rt_base_offset);
    ("lhu", Normal 0x25, Op_rt_base_offset);
    ("sb", Normal 0x28, Op_rt_base_offset);
    ("sh", Normal 0x29, Op_rt_base_offset);
    ("sw", Normal 0x2b, Op_rt_base_offset);
  |]

let specs =
  Array.mapi (fun id (mnemonic, _, operands) -> { id; mnemonic; operands }) table

let opcode_count = Array.length specs

let encoding_of spec =
  let _, enc, _ = table.(spec.id) in
  enc

let by_mnemonic = Hashtbl.create 64

let () = Array.iter (fun s -> Hashtbl.replace by_mnemonic s.mnemonic s) specs

let spec_of_mnemonic m = Hashtbl.find by_mnemonic m

(* Reverse lookup tables for decoding. *)
let funct_table = Array.make 64 (-1)
let regimm_table = Array.make 32 (-1)
let opcode_table = Array.make 64 (-1)

let () =
  Array.iteri
    (fun id (_, enc, _) ->
      match enc with
      | Special funct -> funct_table.(funct) <- id
      | Regimm sel -> regimm_table.(sel) <- id
      | Normal op | Jump op -> opcode_table.(op) <- id)
    table

type t = { spec : spec; rs : int; rt : int; rd : int; shamt : int; imm : int }

let check_field name v bits =
  if v < 0 || v >= 1 lsl bits then
    invalid_arg (Printf.sprintf "Mips.make: %s out of range: %d" name v)

let make spec ?(rs = 0) ?(rt = 0) ?(rd = 0) ?(shamt = 0) ?(imm = 0) () =
  check_field "rs" rs 5;
  check_field "rt" rt 5;
  check_field "rd" rd 5;
  check_field "shamt" shamt 5;
  (match spec.operands with
  | Op_target -> check_field "target" imm 26
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch | Op_rs_branch ->
    check_field "imm" imm 16);
  { spec; rs; rt; rd; shamt; imm }

let encode i =
  match encoding_of i.spec with
  | Special funct ->
    (i.rs lsl 21) lor (i.rt lsl 16) lor (i.rd lsl 11) lor (i.shamt lsl 6) lor funct
  | Regimm sel -> (0x01 lsl 26) lor (i.rs lsl 21) lor (sel lsl 16) lor i.imm
  | Normal op -> (op lsl 26) lor (i.rs lsl 21) lor (i.rt lsl 16) lor i.imm
  | Jump op -> (op lsl 26) lor i.imm

(* The operand-independent bits of the encoded word: primary opcode plus
   the funct / regimm selector. For a canonical instruction,
   [encode i = skeleton i.spec lor <operand fields>]. *)
let skeleton spec =
  match encoding_of spec with
  | Special funct -> funct
  | Regimm sel -> (0x01 lsl 26) lor (sel lsl 16)
  | Normal op | Jump op -> op lsl 26

(* Fields that the operand signature does not mention must be zero for the
   word to be canonical (decode is the inverse of encode only on canonical
   words). *)
let canonical i =
  let zero_rs = i.rs = 0 and zero_rt = i.rt = 0 and zero_rd = i.rd = 0 in
  let zero_sh = i.shamt = 0 and zero_imm = i.imm = 0 in
  match i.spec.operands with
  | Op_none -> zero_rs && zero_rt && zero_rd && zero_sh && zero_imm
  | Op_rd_rs_rt -> zero_sh && zero_imm
  | Op_rd_rt_shamt -> zero_rs && zero_imm
  | Op_rd_rt_rs -> zero_sh && zero_imm
  | Op_rs_rt -> zero_rd && zero_sh && zero_imm
  | Op_rd -> zero_rs && zero_rt && zero_sh && zero_imm
  | Op_rs -> zero_rt && zero_rd && zero_sh && zero_imm
  | Op_rd_rs -> zero_rt && zero_sh && zero_imm
  | Op_rt_rs_imm -> zero_rd && zero_sh
  | Op_rt_imm -> zero_rs && zero_rd && zero_sh
  | Op_rt_base_offset -> zero_rd && zero_sh
  | Op_rs_rt_branch -> zero_rd && zero_sh
  | Op_rs_branch -> zero_rt && zero_rd && zero_sh
  | Op_target -> zero_rs && zero_rt && zero_rd && zero_sh

let decode word =
  if word < 0 || word > 0xffffffff then None
  else
    let op = (word lsr 26) land 0x3f in
    let rs = (word lsr 21) land 0x1f in
    let rt = (word lsr 16) land 0x1f in
    let rd = (word lsr 11) land 0x1f in
    let shamt = (word lsr 6) land 0x1f in
    let funct = word land 0x3f in
    let imm16 = word land 0xffff in
    let target = word land 0x3ffffff in
    let id =
      if op = 0 then funct_table.(funct)
      else if op = 1 then regimm_table.(rt)
      else opcode_table.(op)
    in
    if id < 0 then None
    else
      let spec = specs.(id) in
      let i =
        match encoding_of spec with
        | Special _ -> { spec; rs; rt; rd; shamt; imm = 0 }
        | Regimm _ -> { spec; rs; rt = 0; rd = 0; shamt = 0; imm = imm16 }
        | Normal _ -> { spec; rs; rt; rd = 0; shamt = 0; imm = imm16 }
        | Jump _ -> { spec; rs = 0; rt = 0; rd = 0; shamt = 0; imm = target }
      in
      if canonical i && encode i = word then Some i else None

let encode_program instrs =
  let b = Buffer.create (4 * List.length instrs) in
  List.iter
    (fun i ->
      let w = encode i in
      Buffer.add_char b (Char.chr ((w lsr 24) land 0xff));
      Buffer.add_char b (Char.chr ((w lsr 16) land 0xff));
      Buffer.add_char b (Char.chr ((w lsr 8) land 0xff));
      Buffer.add_char b (Char.chr (w land 0xff)))
    instrs;
  Buffer.contents b

let decode_program bytes =
  if String.length bytes mod 4 <> 0 then
    invalid_arg "Mips.decode_program: length not a multiple of 4";
  Array.init
    (String.length bytes / 4)
    (fun k ->
      let at j = Char.code bytes.[(4 * k) + j] in
      decode ((at 0 lsl 24) lor (at 1 lsl 16) lor (at 2 lsl 8) lor at 3))

let opcode_id i = i.spec.id

let operand_regs i =
  match i.spec.operands with
  | Op_none | Op_target -> []
  | Op_rd_rs_rt -> [ i.rs; i.rt; i.rd ]
  | Op_rd_rt_shamt -> [ i.rt; i.rd; i.shamt ]
  | Op_rd_rt_rs -> [ i.rs; i.rt; i.rd ]
  | Op_rs_rt -> [ i.rs; i.rt ]
  | Op_rd -> [ i.rd ]
  | Op_rs -> [ i.rs ]
  | Op_rd_rs -> [ i.rs; i.rd ]
  | Op_rt_rs_imm -> [ i.rs; i.rt ]
  | Op_rt_imm -> [ i.rt ]
  | Op_rt_base_offset -> [ i.rs; i.rt ]
  | Op_rs_rt_branch -> [ i.rs; i.rt ]
  | Op_rs_branch -> [ i.rs ]

let immediate i =
  match i.spec.operands with
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch | Op_rs_branch -> Some i.imm
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_target ->
    None

let long_immediate i =
  match i.spec.operands with
  | Op_target -> Some i.imm
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch | Op_rs_branch ->
    None

let reg_arity spec =
  match spec.operands with
  | Op_none | Op_target -> 0
  | Op_rd | Op_rs | Op_rt_imm | Op_rs_branch -> 1
  | Op_rs_rt | Op_rd_rs | Op_rt_rs_imm | Op_rt_base_offset | Op_rs_rt_branch -> 2
  | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs -> 3

let has_immediate spec =
  match spec.operands with
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch | Op_rs_branch -> true
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_target ->
    false

let has_long_immediate spec =
  match spec.operands with
  | Op_target -> true
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch | Op_rs_branch ->
    false

let reassemble spec ~regs ~imm ~limm =
  let fail () = invalid_arg ("Mips.reassemble: bad operands for " ^ spec.mnemonic) in
  let imm16 () = match imm with Some v -> v | None -> fail () in
  let no_imm () = if imm <> None || limm <> None then fail () in
  match (spec.operands, regs) with
  | Op_none, [] ->
    no_imm ();
    make spec ()
  | Op_rd_rs_rt, [ rs; rt; rd ] ->
    no_imm ();
    make spec ~rs ~rt ~rd ()
  | Op_rd_rt_shamt, [ rt; rd; shamt ] ->
    no_imm ();
    make spec ~rt ~rd ~shamt ()
  | Op_rd_rt_rs, [ rs; rt; rd ] ->
    no_imm ();
    make spec ~rs ~rt ~rd ()
  | Op_rs_rt, [ rs; rt ] ->
    no_imm ();
    make spec ~rs ~rt ()
  | Op_rd, [ rd ] ->
    no_imm ();
    make spec ~rd ()
  | Op_rs, [ rs ] ->
    no_imm ();
    make spec ~rs ()
  | Op_rd_rs, [ rs; rd ] ->
    no_imm ();
    make spec ~rs ~rd ()
  | Op_rt_rs_imm, [ rs; rt ] -> make spec ~rs ~rt ~imm:(imm16 ()) ()
  | Op_rt_imm, [ rt ] -> make spec ~rt ~imm:(imm16 ()) ()
  | Op_rt_base_offset, [ rs; rt ] -> make spec ~rs ~rt ~imm:(imm16 ()) ()
  | Op_rs_rt_branch, [ rs; rt ] -> make spec ~rs ~rt ~imm:(imm16 ()) ()
  | Op_rs_branch, [ rs ] -> make spec ~rs ~imm:(imm16 ()) ()
  | Op_target, [] -> (
    match limm with Some v -> make spec ~imm:v () | None -> fail ())
  | ( ( Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs
      | Op_rd_rs | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset | Op_rs_rt_branch
      | Op_rs_branch | Op_target ),
      _ ) ->
    fail ()

let signed_immediate i = if i.imm >= 0x8000 then i.imm - 0x10000 else i.imm

let reg_name r = Printf.sprintf "$%d" r

let to_string i =
  let m = i.spec.mnemonic in
  match i.spec.operands with
  | Op_none -> m
  | Op_rd_rs_rt -> Printf.sprintf "%s %s, %s, %s" m (reg_name i.rd) (reg_name i.rs) (reg_name i.rt)
  | Op_rd_rt_shamt -> Printf.sprintf "%s %s, %s, %d" m (reg_name i.rd) (reg_name i.rt) i.shamt
  | Op_rd_rt_rs -> Printf.sprintf "%s %s, %s, %s" m (reg_name i.rd) (reg_name i.rt) (reg_name i.rs)
  | Op_rs_rt -> Printf.sprintf "%s %s, %s" m (reg_name i.rs) (reg_name i.rt)
  | Op_rd -> Printf.sprintf "%s %s" m (reg_name i.rd)
  | Op_rs -> Printf.sprintf "%s %s" m (reg_name i.rs)
  | Op_rd_rs -> Printf.sprintf "%s %s, %s" m (reg_name i.rd) (reg_name i.rs)
  | Op_rt_rs_imm ->
    Printf.sprintf "%s %s, %s, %d" m (reg_name i.rt) (reg_name i.rs) (signed_immediate i)
  | Op_rt_imm -> Printf.sprintf "%s %s, 0x%x" m (reg_name i.rt) i.imm
  | Op_rt_base_offset ->
    Printf.sprintf "%s %s, %d(%s)" m (reg_name i.rt) (signed_immediate i) (reg_name i.rs)
  | Op_rs_rt_branch ->
    Printf.sprintf "%s %s, %s, %d" m (reg_name i.rs) (reg_name i.rt) (signed_immediate i)
  | Op_rs_branch -> Printf.sprintf "%s %s, %d" m (reg_name i.rs) (signed_immediate i)
  | Op_target -> Printf.sprintf "%s 0x%x" m i.imm

let is_branch i =
  match i.spec.operands with
  | Op_rs_rt_branch | Op_rs_branch | Op_target -> true
  | Op_none | Op_rd_rs_rt | Op_rd_rt_shamt | Op_rd_rt_rs | Op_rs_rt | Op_rd | Op_rs | Op_rd_rs
  | Op_rt_rs_imm | Op_rt_imm | Op_rt_base_offset ->
    false

let is_indirect_jump i = i.spec.mnemonic = "jr" || i.spec.mnemonic = "jalr"
