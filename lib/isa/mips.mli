(** A MIPS-I subset with the genuine 32-bit field layout.

    This is the fixed-width RISC target of the paper's experiments. SAMC
    treats the output of {!encode} as opaque 32-bit words; SADC uses the
    field-level views ({!opcode_id}, {!operand_regs}, {!immediate},
    {!long_immediate}) to form its opcode / register / immediate /
    long-immediate streams (§4, §5). *)

type operands =
  | Op_none  (** syscall, break *)
  | Op_rd_rs_rt  (** three-register ALU: add rd, rs, rt *)
  | Op_rd_rt_shamt  (** constant shifts: sll rd, rt, shamt *)
  | Op_rd_rt_rs  (** variable shifts: sllv rd, rt, rs *)
  | Op_rs_rt  (** mult/div families *)
  | Op_rd  (** mfhi, mflo *)
  | Op_rs  (** jr, mthi, mtlo *)
  | Op_rd_rs  (** jalr *)
  | Op_rt_rs_imm  (** immediate ALU: addi rt, rs, imm *)
  | Op_rt_imm  (** lui *)
  | Op_rt_base_offset  (** loads/stores: lw rt, imm(rs) *)
  | Op_rs_rt_branch  (** beq/bne rs, rt, offset *)
  | Op_rs_branch  (** blez/bgtz/bltz/bgez rs, offset *)
  | Op_target  (** j/jal target26 *)

type spec = private {
  id : int;  (** dense opcode identifier, 0 .. {!opcode_count}-1 *)
  mnemonic : string;
  operands : operands;
}

val specs : spec array
(** All supported instructions, indexed by [id]. *)

val opcode_count : int

val spec_of_mnemonic : string -> spec
(** @raise Not_found for unknown mnemonics. *)

type t = private {
  spec : spec;
  rs : int;  (** 5-bit field (also the base register of loads/stores) *)
  rt : int;  (** 5-bit field *)
  rd : int;  (** 5-bit field *)
  shamt : int;  (** 5-bit field *)
  imm : int;  (** 16-bit field (unsigned view) or 26-bit jump target *)
}

val make :
  spec -> ?rs:int -> ?rt:int -> ?rd:int -> ?shamt:int -> ?imm:int -> unit -> t
(** Builds an instruction; fields not used by [spec.operands] must be left
    at their defaults (0).
    @raise Invalid_argument on out-of-range fields. *)

val encode : t -> int
(** 32-bit machine word in \[0, 2^32). *)

val skeleton : spec -> int
(** The operand-independent bits of {!encode}'s word (primary opcode and
    funct / regimm selector): for canonical [i],
    [encode i = skeleton i.spec lor] the operand fields. Lets stream
    decoders assemble words without building a {!t}. *)

val decode : int -> t option
(** Inverse of {!encode}; [None] for words that are not in the subset. *)

val encode_program : t list -> string
(** Big-endian byte image of an instruction sequence. *)

val decode_program : string -> t option array
(** Word-by-word decode of a byte image (length must be a multiple of 4). *)

val opcode_id : t -> int
(** The simplified 8-bit opcode of §4 (dense spec id). *)

val operand_regs : t -> int list
(** The 5-bit register-stream items of the instruction, in field order
    (rs, rt, rd as applicable; constant-shift amounts are included as
    5-bit items, see DESIGN.md). *)

val immediate : t -> int option
(** 16-bit immediate field, when the format has one. *)

val long_immediate : t -> int option
(** 26-bit jump target, when the format has one. *)

val reg_arity : spec -> int
(** Number of register-stream items of the format (the operand-length
    unit's register count, Fig. 6). *)

val has_immediate : spec -> bool

val has_long_immediate : spec -> bool

val reassemble :
  spec -> regs:int list -> imm:int option -> limm:int option -> t
(** Rebuilds an instruction from its stream components — the software
    equivalent of the paper's instruction-generator unit (Fig. 6).
    @raise Invalid_argument if the component counts do not match the
    spec's operand signature. *)

val signed_immediate : t -> int
(** Sign-extended 16-bit immediate (meaningful for I-type formats). *)

val to_string : t -> string
(** Disassembly, e.g. ["addiu $sp, $sp, -32"]. *)

val is_branch : t -> bool
(** True for conditional branches and direct jumps (beq..bgez, j, jal). *)

val is_indirect_jump : t -> bool
(** True for jr/jalr. *)
