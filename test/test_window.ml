(* Rolling-window aggregation under a fake clock: rates, expiry,
   counter-reset clamping, percentiles and hit ratios are all pure
   functions of (timestamp, value) samples the test feeds in. *)

module Obs = Ccomp_obs.Obs
module Window = Ccomp_obs.Window

let feed w samples =
  List.iter (fun (t, v) -> Window.observe w ~now:t [ ("s", v) ]) samples

let test_rate_fake_clock () =
  let w = Window.make ~window_s:60.0 () in
  feed w [ (0.0, 0.0); (1.0, 100.0); (2.0, 250.0); (3.0, 300.0) ];
  Alcotest.(check (option (float 1e-9))) "delta across window" (Some 300.0)
    (Window.delta w "s");
  Alcotest.(check (option (float 1e-9))) "rate = delta / span" (Some 100.0)
    (Window.rate w "s");
  Alcotest.(check (option (float 1e-9))) "last value" (Some 300.0) (Window.last w "s");
  Alcotest.(check (float 1e-9)) "span" 3.0 (Window.span w "s")

let test_window_expiry () =
  let w = Window.make ~window_s:5.0 () in
  (* 100/s for 10s; only the last 5s are in the window *)
  feed w (List.init 11 (fun i -> (float_of_int i, float_of_int (i * 100))));
  Alcotest.(check (option (float 1e-9))) "delta covers only the window" (Some 500.0)
    (Window.delta w "s");
  Alcotest.(check (float 1e-9)) "span capped at window" 5.0 (Window.span w "s");
  Alcotest.(check (option (float 1e-9))) "rate over trailing window" (Some 100.0)
    (Window.rate w "s")

let test_counter_reset_clamp () =
  let w = Window.make ~window_s:60.0 () in
  feed w [ (0.0, 100.0); (1.0, 40.0) ];
  Alcotest.(check (option (float 1e-9))) "reset clamps delta to 0" (Some 0.0)
    (Window.delta w "s")

let test_single_sample () =
  let w = Window.make ~window_s:60.0 () in
  feed w [ (0.0, 7.0) ];
  Alcotest.(check (option (float 1e-9))) "one sample: no delta" None (Window.delta w "s");
  Alcotest.(check (option (float 1e-9))) "one sample: no rate" None (Window.rate w "s");
  Alcotest.(check (option (float 1e-9))) "but last is known" (Some 7.0)
    (Window.last w "s")

let test_non_advancing_ignored () =
  let w = Window.make ~window_s:60.0 () in
  feed w [ (5.0, 1.0); (5.0, 999.0); (4.0, 999.0) ];
  Alcotest.(check (option (float 1e-9))) "stale timestamps ignored" (Some 1.0)
    (Window.last w "s")

let test_capacity_bound () =
  let w = Window.make ~capacity:8 ~window_s:1e9 () in
  feed w (List.init 100 (fun i -> (float_of_int i, float_of_int i)));
  (* ring keeps the newest 8 samples: 92..99 *)
  Alcotest.(check (option (float 1e-9))) "delta over retained ring" (Some 7.0)
    (Window.delta w "s");
  Alcotest.(check (option (float 1e-9))) "newest survives" (Some 99.0)
    (Window.last w "s")

let test_percentile () =
  let w = Window.make ~window_s:1000.0 () in
  List.iter
    (fun i -> Window.observe w ~now:(float_of_int i) [ ("g", float_of_int (i + 1)) ])
    (List.init 100 Fun.id);
  let check name q expected =
    match Window.percentile w "g" ~q with
    | None -> Alcotest.failf "%s: no percentile" name
    | Some p -> Alcotest.(check (float 1e-9)) name expected p
  in
  check "p50 nearest-rank" 50.0 50.0;
  check "p95 nearest-rank" 95.0 95.0;
  check "p99 nearest-rank" 99.0 99.0;
  Alcotest.(check (option (float 1e-9))) "unknown series" None
    (Window.percentile w "nope" ~q:50.0)

let test_ratio () =
  let w = Window.make ~window_s:60.0 () in
  let obs now h m = Window.observe w ~now [ ("hits", h); ("misses", m) ] in
  obs 0.0 0.0 0.0;
  obs 1.0 80.0 20.0;
  (match Window.ratio w "hits" "misses" with
  | None -> Alcotest.fail "ratio should be available"
  | Some r -> Alcotest.(check (float 1e-9)) "hit ratio" 0.8 r);
  let w2 = Window.make ~window_s:60.0 () in
  Window.observe w2 ~now:0.0 [ ("hits", 5.0); ("misses", 5.0) ];
  Window.observe w2 ~now:1.0 [ ("hits", 5.0); ("misses", 5.0) ];
  Alcotest.(check (option (float 1e-9))) "no traffic in window: None" None
    (Window.ratio w2 "hits" "misses")

let test_of_snapshot () =
  let snap =
    {
      Obs.counters = [ ("c", 5) ];
      gauges = [ ("g", 0.5) ];
      histograms =
        [
          {
            Obs.hs_name = "h";
            hs_count = 3;
            hs_sum = 6.0;
            hs_min = 1.0;
            hs_max = 3.0;
            hs_p50 = 2.0;
            hs_p95 = 3.0;
            hs_p99 = 3.0;
          };
        ];
    }
  in
  let flat = Window.of_snapshot snap in
  let get n =
    match List.assoc_opt n flat with
    | Some v -> v
    | None -> Alcotest.failf "series %s missing" n
  in
  Alcotest.(check (float 0.0)) "counter" 5.0 (get "c");
  Alcotest.(check (float 0.0)) "gauge" 0.5 (get "g");
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (get "h.count");
  Alcotest.(check (float 0.0)) "histogram sum" 6.0 (get "h.sum")

let suite =
  [
    Alcotest.test_case "rate under a fake clock" `Quick test_rate_fake_clock;
    Alcotest.test_case "samples expire out of the window" `Quick test_window_expiry;
    Alcotest.test_case "counter reset clamps to zero" `Quick test_counter_reset_clamp;
    Alcotest.test_case "single sample yields no rate" `Quick test_single_sample;
    Alcotest.test_case "non-advancing timestamps ignored" `Quick test_non_advancing_ignored;
    Alcotest.test_case "ring capacity bounds retention" `Quick test_capacity_bound;
    Alcotest.test_case "moving nearest-rank percentiles" `Quick test_percentile;
    Alcotest.test_case "windowed hit ratio" `Quick test_ratio;
    Alcotest.test_case "snapshot flattening" `Quick test_of_snapshot;
  ]
