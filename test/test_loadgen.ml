(* Load-generator invariants, socketless: the arrival schedule is a
   deterministic pure function of its seed, and the measurement model
   is coordinated-omission safe — latencies charged from the scheduled
   send instant can only exceed naive send-time latencies, and under an
   injected stall they must. The live path (real daemon, real sockets)
   is exercised by tools/loadgen_check.sh. *)

module Loadgen = Ccomp_serve.Loadgen

let sched ?(arrivals = Loadgen.Poisson) ?(rate = 100.0) ?(duration = 2.0) seed =
  Loadgen.schedule ~arrivals ~rate_rps:rate ~duration_s:duration ~seed

let test_schedule_deterministic () =
  List.iter
    (fun arrivals ->
      Alcotest.(check bool)
        (Printf.sprintf "same seed, same %s schedule" (Loadgen.arrivals_to_string arrivals))
        true
        (sched ~arrivals 7 = sched ~arrivals 7))
    [ Loadgen.Poisson; Loadgen.Uniform ];
  Alcotest.(check bool) "different seeds, different poisson schedules" false
    (sched 7 = sched 8)

let test_schedule_bounds () =
  List.iter
    (fun seed ->
      let s = sched ~duration:1.5 seed in
      Alcotest.(check bool) "non-empty at 100 rps for 1.5s" true (Array.length s > 0);
      Array.iteri
        (fun i off ->
          if off < 0.0 || off >= 1.5 then
            Alcotest.failf "offset %d = %f outside [0, duration)" i off;
          if i > 0 && off < s.(i - 1) then Alcotest.failf "offsets not sorted at %d" i)
        s)
    [ 1; 2; 42 ];
  Alcotest.(check int) "uniform count is rate * duration" 150
    (Array.length (sched ~arrivals:Loadgen.Uniform ~duration:1.5 1));
  Alcotest.(check int) "degenerate rate yields empty schedule" 0
    (Array.length (Loadgen.schedule ~arrivals:Loadgen.Poisson ~rate_rps:0.0 ~duration_s:5.0 ~seed:1))

let test_poisson_rate () =
  (* over a long horizon the empirical rate approaches the offered one *)
  let s = sched ~rate:200.0 ~duration:30.0 3 in
  let n = float_of_int (Array.length s) in
  Alcotest.(check bool)
    (Printf.sprintf "poisson arrival count %.0f near 6000" n)
    true
    (n > 5400.0 && n < 6600.0)

let test_replay_stall_divergence () =
  (* dense schedule, one 100 ms stall at request 0: the stall queues
     every later request behind it. Corrected latency charges that
     queueing; naive latency (from the actual, late send) hides it. *)
  let n = 50 in
  let scheduled = Array.init n (fun i -> 0.001 *. float_of_int i) in
  let service = Array.init n (fun i -> if i = 0 then 0.1 else 0.0001) in
  let pairs = Loadgen.For_tests.replay ~scheduled ~service in
  let corrected_max = Array.fold_left (fun m (c, _) -> Float.max m c) 0.0 pairs in
  let naive_max = Array.fold_left (fun m (_, nv) -> Float.max m nv) 0.0 pairs in
  Alcotest.(check bool)
    (Printf.sprintf "corrected max %.4f sees the stall" corrected_max)
    true (corrected_max >= 0.09);
  Alcotest.(check bool)
    (Printf.sprintf "naive max %.4f (beyond the stall itself) hides it" naive_max)
    true
    (* request 0 pays its own service time either way; every later
       request's naive latency is just its tiny service time *)
    (Array.for_all (fun i -> snd pairs.(i) < 0.01) (Array.init (n - 1) (fun i -> i + 1)))

let qcheck_corrected_ge_naive =
  let gen =
    QCheck.make
      ~print:(fun (sched, svc) ->
        Printf.sprintf "scheduled=[%s] service=[%s]"
          (String.concat ";" (List.map string_of_float (Array.to_list sched)))
          (String.concat ";" (List.map string_of_float (Array.to_list svc))))
      QCheck.Gen.(
        int_range 1 40 >>= fun n ->
        let pos = map (fun f -> 0.001 +. (f *. 0.2)) (float_bound_inclusive 1.0) in
        pair
          (map
             (fun l ->
               let a = Array.of_list l in
               Array.sort compare a;
               a)
             (list_repeat n pos))
          (map Array.of_list (list_repeat n pos)))
  in
  QCheck.Test.make ~count:200 ~name:"replay: corrected latency >= naive latency always" gen
    (fun (scheduled, service) ->
      Array.for_all
        (fun (corrected, naive) -> corrected >= naive -. 1e-12)
        (Loadgen.For_tests.replay ~scheduled ~service))

let qcheck_schedule_deterministic =
  QCheck.Test.make ~count:100 ~name:"schedule is a pure function of its seed"
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, poisson) ->
      let arrivals = if poisson then Loadgen.Poisson else Loadgen.Uniform in
      sched ~arrivals seed = sched ~arrivals seed)

let mk_report () =
  {
    Loadgen.r_offered_rps = 100.0;
    r_achieved_rps = 99.0;
    r_duration_s = 5.0;
    r_elapsed_s = 5.1;
    r_sent = 500;
    r_ok = 490;
    r_shed = 8;
    r_deadline_expired = 2;
    r_failed = 0;
    r_transport = 0;
    r_timed = 490;
    r_p50_ms = 1.0;
    r_p95_ms = 4.0;
    r_p99_ms = 9.0;
    r_p999_ms = 20.0;
    r_max_ms = 25.0;
    r_queue_p50_ms = 0.1;
    r_queue_p99_ms = 2.0;
    r_service_p50_ms = 0.5;
    r_service_p99_ms = 5.0;
    r_network_p50_ms = 0.2;
    r_network_p99_ms = 1.0;
    r_shed_rate = 0.016;
    r_deadline_rate = 0.004;
    r_conn_reuse = true;
    r_conns = 4;
    r_connects = 5;
    r_reconnects = 1;
    r_connect_p50_ms = 0.2;
    r_connect_p99_ms = 0.8;
    r_remainder_clamped = 3;
    r_slo_p99_ms = Some 50.0;
    r_slo_shed_rate = Some 0.05;
    r_slo_deadline_rate = None;
    r_slo_violations = [];
    r_runtime = [];
  }

let test_json_keys () =
  let r = mk_report () in
  let keys = Loadgen.json_keys r in
  let get k =
    match List.assoc_opt k keys with
    | Some v -> v
    | None -> Alcotest.failf "missing key %s" k
  in
  Alcotest.(check (float 1e-9)) "p99 exported" 9.0 (get "loadgen.p99_ms");
  Alcotest.(check (float 1e-9)) "p99.9 exported" 20.0 (get "loadgen.p999_ms");
  Alcotest.(check (float 1e-9)) "declared p99 SLO exported" 50.0 (get "loadgen.slo_p99_ms");
  Alcotest.(check (float 1e-9)) "shed rate exported" 0.016 (get "loadgen.shed_rate");
  Alcotest.(check (float 1e-9)) "conn reuse exported as 1/0" 1.0 (get "loadgen.conn_reuse");
  Alcotest.(check (float 1e-9)) "connects exported" 5.0 (get "loadgen.connects");
  Alcotest.(check (float 1e-9)) "reconnects exported" 1.0 (get "loadgen.reconnects");
  Alcotest.(check (float 1e-9)) "connect p99 exported" 0.8 (get "loadgen.connect_p99_ms");
  Alcotest.(check (float 1e-9)) "remainder clamp count exported" 3.0
    (get "loadgen.remainder_clamped");
  Alcotest.(check bool) "unset SLO omitted" true
    (List.assoc_opt "loadgen.slo_deadline_rate" keys = None);
  (* every key is namespaced so a merge cannot collide with perf keys *)
  List.iter
    (fun (k, _) ->
      if not (String.length k > 8 && String.sub k 0 8 = "loadgen.") then
        Alcotest.failf "unnamespaced key %s" k)
    keys

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_emit_and_merge_json () =
  let r = mk_report () in
  let standalone = Filename.temp_file "lg_emit" ".json" in
  let bench = Filename.temp_file "lg_merge" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove standalone;
      Sys.remove bench)
    (fun () ->
      Loadgen.emit_json ~path:standalone r;
      let text = In_channel.with_open_bin standalone In_channel.input_all in
      Alcotest.(check bool) "standalone carries the schema" true
        (contains ~needle:"\"schema\": \"ccomp-bench-v1\"" text);
      Alcotest.(check bool) "standalone carries p99" true
        (contains ~needle:"\"loadgen.p99_ms\": 9.000" text);
      (* merge into an existing bench file: old keys survive, section lands *)
      Out_channel.with_open_bin bench (fun oc ->
          output_string oc
            "{\n  \"schema\": \"ccomp-bench-v1\",\n  \"scale\": 1,\n  \"jobs\": 2,\n  \"samc.ratio\": 0.581\n}\n");
      (match Loadgen.merge_json ~path:bench r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "merge failed: %s" e);
      let merged = In_channel.with_open_bin bench In_channel.input_all in
      Alcotest.(check bool) "existing keys survive the merge" true
        (contains ~needle:"\"samc.ratio\": 0.581" merged);
      Alcotest.(check bool) "loadgen section merged" true
        (contains ~needle:"\"loadgen.p99_ms\": 9.000" merged);
      Alcotest.(check bool) "still exactly one closing brace" true
        (String.index_opt merged '}' = Some (String.length merged - 2));
      (* a non-JSON target is refused, not clobbered *)
      Out_channel.with_open_bin bench (fun oc -> output_string oc "not json");
      match Loadgen.merge_json ~path:bench r with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "merging into a non-JSON file must fail")

let suite =
  [
    Alcotest.test_case "schedule deterministic in its seed" `Quick test_schedule_deterministic;
    Alcotest.test_case "schedule offsets sorted and bounded" `Quick test_schedule_bounds;
    Alcotest.test_case "poisson empirical rate near offered" `Quick test_poisson_rate;
    Alcotest.test_case "stall: corrected diverges from naive" `Quick test_replay_stall_divergence;
    QCheck_alcotest.to_alcotest qcheck_corrected_ge_naive;
    QCheck_alcotest.to_alcotest qcheck_schedule_deterministic;
    Alcotest.test_case "json keys namespaced and SLO-gated" `Quick test_json_keys;
    Alcotest.test_case "emit/merge bench JSON" `Quick test_emit_and_merge_json;
  ]
