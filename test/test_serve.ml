(* Serve layer, socketless: wire-format round-trips, malformed-frame
   rejection, HTTP routing, and job dispatch producing output
   byte-identical to the offline codec path. The live end-to-end path
   (real sockets, real daemon) is exercised by tools/serve_check.sh. *)

module P = Ccomp_progen
module Samc = Ccomp_core.Samc
module Image = Ccomp_image.Image
module Serve = Ccomp_serve.Serve

let profile =
  { (P.Profile.find "ijpeg") with P.Profile.name = "srv"; target_ops = 600; functions = 6 }

let mips_code =
  lazy
    (let prog = P.Generator.generate ~seed:91L profile in
     let _, layout = P.Mips_backend.lower prog in
     layout.P.Layout.code)

let no_meta = { Serve.deadline_ms = 0; request_id = 0L }

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Serve.decode_request (Serve.encode_request req) with
      | Ok got -> Alcotest.(check bool) "request survives the wire" true (got = (req, no_meta))
      | Error e -> Alcotest.failf "round-trip failed: %s" (Serve.protocol_error_to_string e))
    [
      Serve.Compress { algo = Serve.Samc; isa = Serve.Mips; block_size = 32; code = "\x00\x01\xff" };
      Serve.Compress { algo = Serve.Sadc; isa = Serve.X86; block_size = 64; code = "" };
      Serve.Decompress "arbitrary \x00 bytes";
      Serve.Ping;
      Serve.Crash_worker;
    ]

let test_deadline_roundtrip () =
  (* the deadline field rides the header, not the payload *)
  List.iter
    (fun ms ->
      match Serve.decode_request (Serve.encode_request ~deadline_ms:ms (Serve.Decompress "x")) with
      | Ok (Serve.Decompress "x", got) ->
        Alcotest.(check int)
          (Printf.sprintf "deadline %dms survives the wire" ms)
          ms got.Serve.deadline_ms
      | Ok _ -> Alcotest.fail "request mangled"
      | Error e -> Alcotest.failf "round-trip failed: %s" (Serve.protocol_error_to_string e))
    [ 0; 1; 250; 0x7fffffff ]

let test_request_id_roundtrip () =
  List.iter
    (fun id ->
      match Serve.decode_request (Serve.encode_request ~request_id:id Serve.Ping) with
      | Ok (Serve.Ping, got) ->
        Alcotest.(check int64)
          (Printf.sprintf "request id %Ld survives the wire" id)
          id got.Serve.request_id
      | Ok _ -> Alcotest.fail "request mangled"
      | Error e -> Alcotest.failf "round-trip failed: %s" (Serve.protocol_error_to_string e))
    [ 0L; 1L; 0xdeadbeefL; Int64.max_int; -1L ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Serve.decode_response (Serve.encode_response resp) with
      | Ok got -> Alcotest.(check bool) "response survives the wire" true (got = (resp, None))
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [
      Serve.Payload "\x00binary\xff";
      Serve.Payload "";
      Serve.Failed "no such image";
      Serve.Overloaded "job queue full";
      Serve.Deadline_expired "0.3ms over";
    ]

let test_timing_roundtrip () =
  let timing =
    { Serve.t_request_id = 77L; t_queue_us = 123; t_service_us = 45678; t_server_us = 46000 }
  in
  (match Serve.decode_response (Serve.encode_response ~timing (Serve.Payload "data")) with
  | Ok (Serve.Payload "data", Some got) ->
    Alcotest.(check bool) "timing record survives the wire" true (got = timing)
  | Ok _ -> Alcotest.fail "response mangled"
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* durations past 32 bits cap instead of wrapping to something small *)
  let big = { timing with Serve.t_service_us = 0x1_2345_6789 } in
  match Serve.decode_response (Serve.encode_response ~timing:big (Serve.Payload "")) with
  | Ok (_, Some got) ->
    Alcotest.(check int) "oversized duration caps at u32 max" 0xFFFF_FFFF got.Serve.t_service_us
  | Ok (_, None) -> Alcotest.fail "timing record lost"
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let expect_error name = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: malformed frame must be rejected" name

(* hand-build a request header: magic, op, algo, isa, block(2,BE),
   deadline(4,BE), request_id(8,BE), payload_len(4,BE) *)
let be32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let frame ?(magic = "CCQ1") ?(algo = 0) ?(isa = 0) ?(block = 0) ?(deadline = 0) ?len ~op payload =
  let len = match len with Some l -> l | None -> String.length payload in
  magic
  ^ String.init 3 (fun i -> Char.chr [| op; algo; isa |].(i))
  ^ String.init 2 (fun i -> Char.chr ((block lsr (8 * (1 - i))) land 0xff))
  ^ be32 deadline
  ^ String.make 8 '\x00' (* request id *)
  ^ be32 len ^ payload

let test_malformed_frames () =
  expect_error "empty" (Serve.decode_request "");
  expect_error "bad magic" (Serve.decode_request (frame ~magic:"XXXX" ~op:3 ""));
  expect_error "short header" (Serve.decode_request "CCQ1\x03");
  expect_error "old 13-byte header" (Serve.decode_request "CCQ1\x03\x00\x00\x00\x00\x00\x00\x00\x00");
  expect_error "old 17-byte header (pre-request-id wire)"
    (Serve.decode_request ("CCQ1\x03" ^ String.make 12 '\x00'));
  expect_error "length mismatch" (Serve.decode_request (frame ~op:2 ~len:9 "short"));
  expect_error "unknown opcode" (Serve.decode_request (frame ~op:7 ""));
  expect_error "zero block size" (Serve.decode_request (frame ~op:1 ~block:0 "x"));
  expect_error "unknown algo" (Serve.decode_request (frame ~op:1 ~algo:9 ~block:32 "x"));
  expect_error "response bad magic" (Serve.decode_response "CCQX\x00\x00\x00\x00\x00\x00");
  expect_error "response truncated" (Serve.decode_response "CCR1\x00\x00\x00\x00\x00\x05ab");
  expect_error "response unknown status" (Serve.decode_response "CCR1\x09\x00\x00\x00\x00\x00");
  expect_error "response old 9-byte header (pre-timing wire)"
    (Serve.decode_response "CCR1\x00\x00\x00\x00\x00");
  expect_error "response bogus timing length"
    (Serve.decode_response ("CCR1\x00\x05" ^ be32 0 ^ "xxxxx"));
  (* the error is typed: a declared-oversize frame is Frame_too_large
     even when no payload bytes follow *)
  match Serve.decode_request (frame ~op:2 ~len:(Serve.max_payload + 1) "") with
  | Error (Serve.Frame_too_large { limit; got }) ->
    Alcotest.(check int) "limit reported" Serve.max_payload limit;
    Alcotest.(check int) "declared length reported" (Serve.max_payload + 1) got
  | Error e ->
    Alcotest.failf "oversize frame: wanted Frame_too_large, got %s"
      (Serve.protocol_error_to_string e)
  | Ok _ -> Alcotest.fail "oversize frame must be rejected"

(* --- full framing path over a socketpair -------------------------------- *)

let with_socketpair f =
  let server, client = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close server with Unix.Unix_error _ -> ());
      (try Unix.close client with Unix.Unix_error _ -> ()))
    (fun () -> f server client)

let read_all fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 256 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
  in
  go ()

(* Feed [raw] to a live handle_connection in [chunk]-byte writes
   (default 1, so every server-side read returns a short transfer), then
   collect whatever the server answered. Callers sending more than the
   server will ever read must use large chunks: a flood of tiny writes
   can exhaust the socket's send-buffer accounting and block the feeder
   once the server stops reading. *)
let drive_connection ?(chunk = 1) raw =
  with_socketpair (fun server client ->
      let feeder =
        Domain.spawn (fun () ->
            let n = String.length raw in
            let pos = ref 0 in
            while !pos < n do
              let len = min chunk (n - !pos) in
              pos := !pos + Unix.write_substring client raw !pos len
            done;
            Unix.shutdown client Unix.SHUTDOWN_SEND)
      in
      Serve.handle_connection ~jobs:1 server;
      Unix.shutdown server Unix.SHUTDOWN_SEND;
      let resp = read_all client in
      Domain.join feeder;
      resp)

let test_partial_writes () =
  (* a whole request delivered in 1-byte reads must still parse *)
  let resp = drive_connection (Serve.encode_request Serve.Ping) in
  match Serve.decode_response resp with
  | Ok (Serve.Payload p, timing) ->
    Alcotest.(check string) "pong over short transfers" "pong" p;
    Alcotest.(check bool) "no timing echo without a request id" true (timing = None)
  | Ok (Serve.Failed e, _) -> Alcotest.failf "ping failed: %s" e
  | Ok _ -> Alcotest.fail "unexpected typed reply"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_timing_echo () =
  (* a nonzero request id asks the daemon for its server-side split *)
  let resp = drive_connection ~chunk:64 (Serve.encode_request ~request_id:42L Serve.Ping) in
  match Serve.decode_response resp with
  | Ok (Serve.Payload p, Some t) ->
    Alcotest.(check string) "pong" "pong" p;
    Alcotest.(check int64) "request id echoed" 42L t.Serve.t_request_id;
    Alcotest.(check bool) "server_us covers the stages" true
      (t.Serve.t_server_us >= 0
      && t.Serve.t_queue_us >= 0
      && t.Serve.t_service_us >= 0
      && t.Serve.t_server_us >= t.Serve.t_service_us)
  | Ok (Serve.Payload _, None) -> Alcotest.fail "nonzero request id must be answered with timing"
  | Ok (Serve.Failed e, _) -> Alcotest.failf "ping failed: %s" e
  | Ok _ -> Alcotest.fail "unexpected typed reply"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_oversize_frame_refused () =
  (* header declares a payload past max_payload; the daemon must answer
     Failed without waiting for (or allocating) the payload *)
  let header = frame ~op:2 ~len:(Serve.max_payload + 1) "" in
  match Serve.decode_response (drive_connection header) with
  | Ok (Serve.Failed msg, _) ->
    Alcotest.(check bool)
      (Printf.sprintf "mentions the limit: %S" msg)
      true
      (String.length msg >= 15 && String.sub msg 0 15 = "frame too large")
  | Ok _ -> Alcotest.fail "oversize frame must not succeed"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_truncated_frame_refused () =
  (* header promises 9 payload bytes, peer closes after 5 *)
  let raw = frame ~op:2 ~len:9 "short" in
  match Serve.decode_response (drive_connection raw) with
  | Ok (Serve.Failed msg, _) ->
    Alcotest.(check bool)
      (Printf.sprintf "mentions truncation: %S" msg)
      true
      (String.length msg >= 9 && String.sub msg 0 9 = "truncated")
  | Ok _ -> Alcotest.fail "truncated frame must not succeed"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_expired_deadline_on_arrival () =
  (* a frame arriving with a 1 ms budget and a deliberate pause before
     dispatch must come back Deadline_expired, not Payload *)
  let raw = Serve.encode_request ~deadline_ms:1 Serve.Ping in
  (* drive byte-by-byte: 25 one-byte writes take well over 1 ms of
     scheduling, so the budget is spent by dispatch time *)
  let resp = drive_connection raw in
  match Serve.decode_response resp with
  | Ok (Serve.Deadline_expired _, _) -> ()
  | Ok (Serve.Payload _, _) ->
    (* acceptable on a very fast machine: the frame beat the clock;
       retry with an unbeatable payload *)
    let code = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) in
    let raw =
      Serve.encode_request ~deadline_ms:1
        (Serve.Compress { algo = Serve.Samc; isa = Serve.Mips; block_size = 32; code })
    in
    (match Serve.decode_response (drive_connection ~chunk:65536 raw) with
    | Ok (Serve.Deadline_expired _, _) -> ()
    | Ok _ -> Alcotest.fail "a 1ms-deadline 1MiB compress must expire"
    | Error e -> Alcotest.failf "bad response frame: %s" e)
  | Ok _ -> Alcotest.fail "unexpected typed reply"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_crash_op_gated () =
  (* without --unsafe-crash-op the opcode is refused with Failed, and
     the worker must NOT crash *)
  let raw = Serve.encode_request Serve.Crash_worker in
  match Serve.decode_response (drive_connection raw) with
  | Ok (Serve.Failed msg, _) ->
    Alcotest.(check bool) (Printf.sprintf "names the gate: %S" msg) true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "ungated crash op must be refused"
  | Error e -> Alcotest.failf "bad response frame: %s" e

let test_crash_op_raises_when_allowed () =
  match Serve.handle_request ~jobs:1 Serve.Crash_worker with
  | exception Serve.Worker_crashed -> ()
  | _ -> Alcotest.fail "handle_request must raise Worker_crashed for the chaos op"

let test_http_head_too_large () =
  (* an HTTP head that never terminates within max_http_head gets 413,
     not a misparse of the truncated request line *)
  let raw = "GET /" ^ String.make 9000 'a' in
  let resp = drive_connection ~chunk:4096 raw in
  let prefix = "HTTP/1.0 413" in
  Alcotest.(check bool) "413 on oversize head" true
    (String.length resp >= String.length prefix
    && String.sub resp 0 (String.length prefix) = prefix)

let test_ping () =
  match Serve.handle_request ~jobs:1 Serve.Ping with
  | Serve.Payload p -> Alcotest.(check string) "pong" "pong" p
  | Serve.Failed e -> Alcotest.failf "ping failed: %s" e
  | _ -> Alcotest.fail "unexpected typed reply"

let test_compress_byte_identity () =
  let code = Lazy.force mips_code in
  let served =
    match
      Serve.handle_request ~jobs:1
        (Serve.Compress { algo = Serve.Samc; isa = Serve.Mips; block_size = 32; code })
    with
    | Serve.Payload p -> p
    | Serve.Failed e -> Alcotest.failf "served compress failed: %s" e
    | _ -> Alcotest.fail "unexpected typed reply"
  in
  let offline =
    let cfg = Samc.mips_config ~block_size:32 ~context_bits:2 ~quantize:false ~prune_below:0 () in
    Image.write (Image.of_samc ~isa:Image.Mips (Samc.compress cfg code))
  in
  Alcotest.(check bool) "served image byte-identical to offline CLI path" true
    (served = offline)

let test_decompress_roundtrip () =
  let code = Lazy.force mips_code in
  let image =
    match
      Serve.handle_request ~jobs:1
        (Serve.Compress { algo = Serve.Sadc; isa = Serve.Mips; block_size = 32; code })
    with
    | Serve.Payload p -> p
    | Serve.Failed e -> Alcotest.failf "compress failed: %s" e
    | _ -> Alcotest.fail "unexpected typed reply"
  in
  match Serve.handle_request ~jobs:1 (Serve.Decompress image) with
  | Serve.Payload back -> Alcotest.(check bool) "decompress returns the program" true (back = code)
  | Serve.Failed e -> Alcotest.failf "decompress failed: %s" e
  | _ -> Alcotest.fail "unexpected typed reply"

let test_decompress_garbage () =
  match Serve.handle_request ~jobs:1 (Serve.Decompress "not an image at all") with
  | Serve.Failed _ -> ()
  | _ -> Alcotest.fail "garbage must not decompress"

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_http_routing () =
  (match Serve.http_response "/healthz" with
  | Some (200, _, body) -> Alcotest.(check string) "healthz body" "ok\n" body
  | _ -> Alcotest.fail "/healthz must be 200");
  (match Serve.http_response "/metrics" with
  | Some (200, ctype, body) ->
    let prefix = "application/openmetrics-text" in
    Alcotest.(check bool) "openmetrics content type" true
      (String.length ctype >= String.length prefix
      && String.sub ctype 0 (String.length prefix) = prefix);
    (match Ccomp_obs.Openmetrics.parse body with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "/metrics body must parse: %s" e);
    Alcotest.(check bool) "serve info metric exposed" true
      (contains ~needle:"# TYPE serve info" body && contains ~needle:"serve_info{" body);
    Alcotest.(check bool) "uptime gauge exposed" true
      (contains ~needle:"serve_uptime_seconds " body)
  | _ -> Alcotest.fail "/metrics must be 200");
  (match Serve.http_response "/snapshot" with
  | Some (200, _, body) -> (
    match Ccomp_obs.Obs.snapshot_of_json body with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "/snapshot body must parse: %s" e)
  | _ -> Alcotest.fail "/snapshot must be 200");
  (match Serve.http_response "/events?n=3" with
  | Some (200, _, _) -> ()
  | _ -> Alcotest.fail "/events must accept ?n=");
  (match Serve.http_response "/events?level=warn&n=3" with
  | Some (200, _, _) -> ()
  | _ -> Alcotest.fail "/events must accept ?level=");
  (match Serve.http_response "/events?level=noise" with
  | Some (400, _, body) ->
    Alcotest.(check bool) "400 names the bad level" true (contains ~needle:"noise" body)
  | _ -> Alcotest.fail "unknown ?level= must 400");
  match Serve.http_response "/nope" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown path must 404"

let test_events_level_filter_http () =
  (* the filter semantics through the HTTP path: last n at-or-above *)
  let module Events = Ccomp_obs.Events in
  let was = Events.enabled () in
  Events.set_enabled true;
  Events.clear ();
  Fun.protect
    ~finally:(fun () ->
      Events.clear ();
      Events.set_enabled was)
    (fun () ->
      Events.warn "w.one";
      Events.debug "d.noise";
      Events.error "e.two";
      Events.debug "d.more";
      match Serve.http_response "/events?level=warn&n=10" with
      | Some (200, _, body) ->
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
        Alcotest.(check int) "only the warn+ events" 2 (List.length lines);
        Alcotest.(check bool) "debug chatter filtered out" false
          (contains ~needle:"d.noise" body);
        Alcotest.(check bool) "both severities present" true
          (contains ~needle:"w.one" body && contains ~needle:"e.two" body)
      | _ -> Alcotest.fail "/events?level=warn must be 200")

(* --- CCQ1v4 keep-alive over a socketpair -------------------------------- *)

let rd32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* Split a stream of concatenated CCR1 frames into decoded replies —
   keep-alive responses arrive back-to-back on one connection, so the
   reader must find each frame's end from its own header. *)
let split_replies raw =
  let n = String.length raw in
  let rec go pos acc =
    if pos = n then List.rev acc
    else if pos + 10 > n then Alcotest.failf "torn reply header: %d trailing bytes" (n - pos)
    else begin
      let total = 10 + Char.code raw.[pos + 5] + rd32 raw (pos + 6) in
      if pos + total > n then Alcotest.failf "torn reply body at offset %d" pos
      else
        match Serve.decode_response (String.sub raw pos total) with
        | Ok r -> go (pos + total) (r :: acc)
        | Error e -> Alcotest.failf "bad reply frame at offset %d: %s" pos e
    end
  in
  go 0 []

(* drive_connection, keep-alive flavoured: optional idle timeout and
   recycle bound, feeder tolerant of the server closing first. *)
let drive_keepalive ?idle_timeout_s ?max_requests ?(chunk = 256) raw =
  with_socketpair (fun server client ->
      let feeder =
        Domain.spawn (fun () ->
            try
              let n = String.length raw in
              let pos = ref 0 in
              while !pos < n do
                let len = min chunk (n - !pos) in
                pos := !pos + Unix.write_substring client raw !pos len
              done;
              Unix.shutdown client Unix.SHUTDOWN_SEND
            with Unix.Unix_error _ -> ())
      in
      Serve.handle_connection ?idle_timeout_s ?max_requests ~jobs:1 server;
      (try Unix.shutdown server Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      let resp = read_all client in
      Domain.join feeder;
      resp)

let test_keepalive_sequence () =
  (* several frames down one connection: one reply each, in order, no
     reconnect — the v4 contract *)
  let raw =
    Serve.encode_request Serve.Ping
    ^ Serve.encode_request (Serve.Decompress "junk")
    ^ Serve.encode_request ~request_id:9L Serve.Ping
  in
  match split_replies (drive_keepalive raw) with
  | [ (Serve.Payload "pong", None); (Serve.Failed _, None); (Serve.Payload "pong", Some t) ] ->
    Alcotest.(check int64) "third frame's id echoed" 9L t.Serve.t_request_id
  | rs -> Alcotest.failf "keep-alive: wanted 3 ordered replies, got %d" (List.length rs)

let test_keepalive_recycle () =
  (* max_requests 2 with 3 frames offered: exactly 2 replies, then a
     clean close — the recycle bound, not an error *)
  let raw = String.concat "" (List.init 3 (fun _ -> Serve.encode_request Serve.Ping)) in
  match split_replies (drive_keepalive ~max_requests:2 raw) with
  | [ (Serve.Payload "pong", _); (Serve.Payload "pong", _) ] -> ()
  | rs -> Alcotest.failf "recycle at 2: wanted exactly 2 replies, got %d" (List.length rs)

let test_keepalive_idle_close () =
  (* a frame, a reply, then silence past the idle timeout: the server
     must close (EOF at the client) instead of waiting forever *)
  with_socketpair (fun server client ->
      let f = Serve.encode_request Serve.Ping in
      let feeder =
        Domain.spawn (fun () ->
            try
              ignore (Unix.write_substring client f 0 (String.length f));
              Unix.sleepf 0.8;
              ignore (Unix.write_substring client f 0 (String.length f));
              Unix.shutdown client Unix.SHUTDOWN_SEND
            with Unix.Unix_error _ -> ())
      in
      Serve.handle_connection ~idle_timeout_s:0.2 ~jobs:1 server;
      (try Unix.shutdown server Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      let resp = read_all client in
      Domain.join feeder;
      match split_replies resp with
      | [ (Serve.Payload "pong", _) ] -> ()
      | rs -> Alcotest.failf "idle close: wanted exactly 1 reply, got %d" (List.length rs))

let test_keepalive_partial_preamble () =
  (* a whole frame then 2 bytes of a next magic and EOF: the first job
     is answered, the torn preamble closes quietly *)
  (match split_replies (drive_keepalive (Serve.encode_request Serve.Ping ^ "CC")) with
  | [ (Serve.Payload "pong", _) ] -> ()
  | rs -> Alcotest.failf "partial preamble: wanted exactly 1 reply, got %d" (List.length rs));
  (* a whole frame then half of a next header: the first job is still
     answered; the torn successor yields at most a typed Failed *)
  let torn = String.sub (Serve.encode_request (Serve.Decompress "yyyy")) 0 10 in
  match split_replies (drive_keepalive (Serve.encode_request Serve.Ping ^ torn)) with
  | (Serve.Payload "pong", _) :: rest ->
    List.iter
      (function
        | Serve.Failed _, _ -> ()
        | _ -> Alcotest.fail "a torn successor must not produce a payload reply")
      rest
  | _ -> Alcotest.fail "first complete frame must be answered despite a torn successor"

let qcheck_pipelined_eq_serial =
  (* pipelining is pure framing: the byte stream for N requests down
     one connection equals the concatenation of the N one-shot reply
     streams (request_id 0 keeps replies timing-free, so deterministic) *)
  let req_gen =
    QCheck.Gen.(
      int_range 0 2 >>= function
      | 0 -> return Serve.Ping
      | 1 -> map (fun s -> Serve.Decompress s) (string_size ~gen:printable (int_range 0 40))
      | _ ->
        map
          (fun words ->
            let code = String.concat "" (List.map (fun w -> be32 w) words) in
            Serve.Compress { algo = Serve.Samc; isa = Serve.Mips; block_size = 32; code })
          (list_size (int_range 1 12) (int_range 0 0xffffff)))
  in
  let print_reqs reqs =
    String.concat ";"
      (List.map
         (function
           | Serve.Ping -> "ping"
           | Serve.Decompress s -> Printf.sprintf "decompress(%d)" (String.length s)
           | Serve.Compress { code; _ } -> Printf.sprintf "compress(%d)" (String.length code)
           | Serve.Crash_worker -> "crash")
         reqs)
  in
  QCheck.Test.make ~count:25 ~name:"pipelined replies = concatenated one-shot replies"
    (QCheck.make ~print:print_reqs QCheck.Gen.(list_size (int_range 1 4) req_gen))
    (fun reqs ->
      let pipelined =
        drive_keepalive (String.concat "" (List.map Serve.encode_request reqs))
      in
      let serial =
        String.concat "" (List.map (fun r -> drive_keepalive (Serve.encode_request r)) reqs)
      in
      pipelined = serial)

let suite =
  [
    Alcotest.test_case "request wire round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "request id wire round-trip" `Quick test_request_id_roundtrip;
    Alcotest.test_case "response wire round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "timing record wire round-trip" `Quick test_timing_roundtrip;
    Alcotest.test_case "malformed frames rejected" `Quick test_malformed_frames;
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "served compress is byte-identical" `Quick test_compress_byte_identity;
    Alcotest.test_case "served decompress round-trips" `Quick test_decompress_roundtrip;
    Alcotest.test_case "garbage decompress fails cleanly" `Quick test_decompress_garbage;
    Alcotest.test_case "HTTP routing" `Quick test_http_routing;
    Alcotest.test_case "/events level filter over HTTP" `Quick test_events_level_filter_http;
    Alcotest.test_case "framing survives 1-byte short transfers" `Quick test_partial_writes;
    Alcotest.test_case "timing echoed for a nonzero request id" `Quick test_timing_echo;
    Alcotest.test_case "oversize frame refused before allocation" `Quick
      test_oversize_frame_refused;
    Alcotest.test_case "truncated frame reported as truncated" `Quick
      test_truncated_frame_refused;
    Alcotest.test_case "oversize HTTP head gets 413" `Quick test_http_head_too_large;
    Alcotest.test_case "deadline field wire round-trip" `Quick test_deadline_roundtrip;
    Alcotest.test_case "expired deadline gets a typed reply" `Quick
      test_expired_deadline_on_arrival;
    Alcotest.test_case "crash op refused when not enabled" `Quick test_crash_op_gated;
    Alcotest.test_case "crash op raises for supervision" `Quick test_crash_op_raises_when_allowed;
    Alcotest.test_case "keep-alive serves frames in sequence" `Quick test_keepalive_sequence;
    Alcotest.test_case "keep-alive recycles at max_requests" `Quick test_keepalive_recycle;
    Alcotest.test_case "keep-alive closes an idle connection" `Quick test_keepalive_idle_close;
    Alcotest.test_case "keep-alive survives torn successors" `Quick
      test_keepalive_partial_preamble;
    QCheck_alcotest.to_alcotest qcheck_pipelined_eq_serial;
  ]
