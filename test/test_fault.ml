module Prng = Ccomp_util.Prng
module Decode_error = Ccomp_util.Decode_error
module Image = Ccomp_image.Image
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Injector = Ccomp_fault.Injector
module Target = Ccomp_fault.Target
module Campaign = Ccomp_fault.Campaign
module System = Ccomp_memsys.System
module Lat = Ccomp_memsys.Lat
module P = Ccomp_progen

let code_for seed =
  let profile =
    { (P.Profile.find "m88ksim") with P.Profile.name = "t"; target_ops = 700; functions = 8 }
  in
  (snd (P.Mips_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

let x86_code_for seed =
  let profile =
    { (P.Profile.find "m88ksim") with P.Profile.name = "t"; target_ops = 700; functions = 8 }
  in
  let c = (snd (P.X86_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code in
  let r = String.length c mod 4 in
  if r = 0 then c else c ^ String.make (4 - r) '\x90'

(* --- injector ---------------------------------------------------------- *)

let test_injector_deterministic () =
  let s = String.init 257 (fun i -> Char.chr (i land 0xff)) in
  let damage seed =
    let g = Prng.create seed in
    Injector.inject ~count:5 ~kinds:[| Injector.Flip; Byte; Trunc; Dup |] g s
  in
  let d1, f1 = damage 99L and d2, f2 = damage 99L in
  Alcotest.(check string) "same seed, same damage" d1 d2;
  Alcotest.(check int) "same fault count" (List.length f1) (List.length f2);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same faults" (Injector.describe_fault a)
        (Injector.describe_fault b))
    f1 f2;
  let d3, _ = damage 100L in
  Alcotest.(check bool) "different seed, different damage" true (d1 <> d3)

let test_injector_apply () =
  let s = "abcd" in
  Alcotest.(check string) "bit flip" "abcf" (Injector.apply (Injector.Bit_flip (3 * 8 + 1)) s);
  Alcotest.(check string) "byte set" "aXcd" (Injector.apply (Injector.Byte_set (1, Char.code 'X')) s);
  Alcotest.(check string) "truncate" "ab" (Injector.apply (Injector.Truncate 2) s);
  Alcotest.(check string) "duplicate" "abbcd" (Injector.apply (Injector.Duplicate (1, 1)) s);
  (* totality: out-of-range faults are no-ops *)
  Alcotest.(check string) "oob flip" s (Injector.apply (Injector.Bit_flip (100 * 8)) s);
  Alcotest.(check string) "oob byte" s (Injector.apply (Injector.Byte_set (9, 1)) s);
  Alcotest.(check string) "long truncate" s (Injector.apply (Injector.Truncate 10) s);
  Alcotest.(check string) "oob duplicate" s (Injector.apply (Injector.Duplicate (7, 2)) s)

let test_injector_range () =
  let s = String.make 64 '\x00' in
  let g = Prng.create 5L in
  for _ = 1 to 100 do
    match Injector.random_bit_flip ~range:(16, 8) g s with
    | Injector.Bit_flip bit ->
      let off = bit lsr 3 in
      Alcotest.(check bool) "flip within range" true (off >= 16 && off < 24)
    | _ -> Alcotest.fail "expected a bit flip"
  done

(* --- SECF v2 ----------------------------------------------------------- *)

let samc_image seed =
  let code = code_for seed in
  (code, Image.of_samc ~isa:Image.Mips (Samc.compress (Samc.mips_config ()) code))

let test_v2_roundtrip () =
  let code, img = samc_image 11L in
  List.iter
    (fun kind ->
      let img2 = Image.with_block_crcs kind img in
      let bytes = Image.write img2 in
      match Image.read bytes with
      | Error e -> Alcotest.failf "v2 read failed: %s" e
      | Ok img' ->
        Alcotest.(check bool) "tags present" true (img'.Image.block_crcs <> None);
        Alcotest.(check bool) "tags verify" true (Image.verify_block_crcs img' = Ok ());
        (match Image.decompress_checked img' with
        | Ok out -> Alcotest.(check string) "decompress" code out
        | Error e -> Alcotest.failf "decompress failed: %s" (Decode_error.to_string e)))
    [ Image.Crc8_tags; Image.Crc16_tags ]

let test_v1_bytes_unchanged () =
  let _, img = samc_image 12L in
  (* attaching and removing tags must write the original v1 bytes *)
  let v1 = Image.write img in
  Alcotest.(check int) "version byte" 1 (Char.code v1.[4]);
  Alcotest.(check string) "v1 writer untouched" v1
    (Image.write (Image.without_block_crcs (Image.with_block_crcs Image.Crc8_tags img)));
  match Image.read v1 with
  | Error e -> Alcotest.failf "v1 read failed: %s" e
  | Ok img' -> Alcotest.(check bool) "no tags on v1" true (img'.Image.block_crcs = None)

let test_sections_cover_image () =
  let _, img = samc_image 13L in
  let img = Image.with_block_crcs Image.Crc8_tags img in
  let bytes = Image.write img in
  let sections = Image.sections img in
  List.iter
    (fun (sec, (off, len)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in bounds" (Image.section_name sec))
        true
        (off >= 0 && len >= 0 && off + len <= String.length bytes))
    sections;
  (* the trailer must be the last four bytes *)
  let off, len = List.assoc Image.Sec_trailer_crc sections in
  Alcotest.(check int) "trailer length" 4 len;
  Alcotest.(check int) "trailer position" (String.length bytes - 4) off

let test_locate_corruption () =
  let _, img = samc_image 14L in
  let img = Image.with_block_crcs Image.Crc8_tags img in
  let bytes = Image.write img in
  let g = Prng.create 3L in
  let target = Image.block_count img / 2 in
  let damaged, faults =
    Target.corrupt_section ~count:1 g img (Image.Sec_block target) bytes
  in
  Alcotest.(check bool) "a fault was injected" true (faults <> []);
  match Image.read_checked ~verify_crc:false damaged with
  | Error e -> Alcotest.failf "structural read failed: %s" (Decode_error.to_string e)
  | Ok img' ->
    Alcotest.(check (list int)) "corruption localised" [ target ] (Image.locate_corruption img');
    (match Image.decompress_checked img' with
    | Error (Decode_error.Crc_mismatch _) -> ()
    | Error e -> Alcotest.failf "expected CRC mismatch, got %s" (Decode_error.to_string e)
    | Ok _ -> Alcotest.fail "corrupt block decoded without complaint")

(* --- hardened decoders ------------------------------------------------- *)

let test_huffman_rejects_deficient () =
  (* lengths [2;2;0]: Kraft sum 1/2 < 1 — some bit patterns decode to nothing *)
  let deficient = "\x00\x03\x01\x02\x00\x00" in
  (match Ccomp_huffman.Huffman.deserialize_lengths deficient ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deficient table accepted");
  (* the degenerate single-symbol code stays legal *)
  let single = "\x00\x01\x00\x01" in
  let code, _ = Ccomp_huffman.Huffman.deserialize_lengths single ~pos:0 in
  Alcotest.(check int) "single-symbol alphabet" 1 (Ccomp_huffman.Huffman.alphabet_size code)

let test_lzw_max_output () =
  let data = String.concat "" (List.init 50 (fun i -> Printf.sprintf "chunk %d " i)) in
  let z = Ccomp_baselines.Lzw.compress data in
  (match Ccomp_baselines.Lzw.decompress_checked ~max_output:(String.length data) z with
  | Ok out -> Alcotest.(check string) "roundtrip under cap" data out
  | Error e -> Alcotest.failf "in-budget decompress failed: %s" (Decode_error.to_string e));
  match Ccomp_baselines.Lzw.decompress_checked ~max_output:10 z with
  | Error (Decode_error.Length_overflow _) -> ()
  | Error e -> Alcotest.failf "expected overflow, got %s" (Decode_error.to_string e)
  | Ok _ -> Alcotest.fail "output exceeded max_output without complaint"

let test_lzss_max_output () =
  let data = String.concat "" (List.init 50 (fun i -> Printf.sprintf "block %d " i)) in
  let z = Ccomp_baselines.Lzss.compress data in
  (match Ccomp_baselines.Lzss.decompress_checked ~max_output:(String.length data) z with
  | Ok out -> Alcotest.(check string) "roundtrip under cap" data out
  | Error e -> Alcotest.failf "in-budget decompress failed: %s" (Decode_error.to_string e));
  match Ccomp_baselines.Lzss.decompress_checked ~max_output:10 z with
  | Error (Decode_error.Length_overflow _) -> ()
  | Error e -> Alcotest.failf "expected overflow, got %s" (Decode_error.to_string e)
  | Ok _ -> Alcotest.fail "output exceeded max_output without complaint"

(* --- campaigns --------------------------------------------------------- *)

let image_codec name img reference =
  let img = Image.with_block_crcs Image.Crc8_tags img in
  {
    Campaign.name;
    encoded = Image.write img;
    reference;
    decode = (fun s -> Result.bind (Image.read_checked s) Image.decompress_checked);
    integrity_checked = true;
  }

let secf_codecs () =
  let mips = code_for 21L and x86 = x86_code_for 21L in
  [
    image_codec "samc-mips"
      (Image.of_samc ~isa:Image.Mips (Samc.compress (Samc.mips_config ()) mips))
      mips;
    image_codec "samc-x86"
      (Image.of_samc ~isa:Image.X86 (Samc.compress (Samc.byte_config ()) x86))
      x86;
    image_codec "sadc-mips"
      (Image.of_sadc_mips (Sadc.Mips.compress_image (Sadc.default_config ()) mips))
      mips;
    image_codec "sadc-x86"
      (Image.of_sadc_x86 (Sadc.X86.compress_image (Sadc.default_config ()) x86))
      x86;
  ]

(* The acceptance property, one qcheck test per algorithm/ISA: flip any
   single bit of a valid SECF image and the checked decode path either
   reports a typed error or round-trips exactly — never raises, never
   silently miscompares. 250 trials each. *)
let prop_bit_flip_never_silent codec =
  let nbits = String.length codec.Campaign.encoded * 8 in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: single-bit flips detected or recovered" codec.Campaign.name)
    ~count:250
    QCheck.(int_bound (nbits - 1))
    (fun bit ->
      let damaged = Injector.apply (Injector.Bit_flip bit) codec.Campaign.encoded in
      match Campaign.trial codec damaged with
      | Campaign.Detected | Campaign.Recovered -> true
      | Campaign.Miscompared -> false)

let test_campaign_counts () =
  let codec = List.hd (secf_codecs ()) in
  let r = Campaign.run ~seed:7 ~trials:100 codec in
  Alcotest.(check int) "all trials classified" 100 (r.Campaign.detected + r.Campaign.recovered);
  Alcotest.(check int) "no silent miscompares" 0 r.Campaign.miscompared;
  Alcotest.(check bool) "flips are detected" true (r.Campaign.detected > 90);
  let r' = Campaign.run ~seed:7 ~trials:100 codec in
  Alcotest.(check int) "campaign deterministic" r.Campaign.detected r'.Campaign.detected;
  (* the seed rides in the report so any logged row replays its run *)
  Alcotest.(check int) "report carries its seed" 7 r.Campaign.seed;
  Alcotest.(check bool) "seed printed in the report row" true
    (let row = Campaign.report_row r in
     let needle = " 7 " in
     let n = String.length needle in
     let rec find i = i + n <= String.length row && (String.sub row i n = needle || find (i + 1)) in
     find 0)

let test_campaign_multi_fault_sweep () =
  let codec = List.hd (secf_codecs ()) in
  let reports = Campaign.sweep ~seed:3 ~trials:40 ~fault_counts:[ 1; 2; 4 ] codec in
  Alcotest.(check int) "one report per count" 3 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check int) "no silent miscompares" 0 r.Campaign.miscompared;
      Alcotest.(check int) "all classified" 40 (r.Campaign.detected + r.Campaign.recovered))
    reports

(* Raw decoders carry no integrity metadata: miscompares are permitted
   (and recorded as such), but exceptions still are not — Campaign.run
   would propagate one and fail this test loudly. *)
let test_campaign_unchecked_baselines_total () =
  let data = code_for 22L in
  let codecs =
    [
      {
        Campaign.name = "lzw";
        encoded = Ccomp_baselines.Lzw.compress data;
        reference = data;
        decode = Ccomp_baselines.Lzw.decompress_checked ~max_output:(String.length data);
        integrity_checked = false;
      };
      {
        Campaign.name = "lzss";
        encoded = Ccomp_baselines.Lzss.compress data;
        reference = data;
        decode = Ccomp_baselines.Lzss.decompress_checked ~max_output:(String.length data);
        integrity_checked = false;
      };
      {
        Campaign.name = "byte-huffman";
        encoded = Ccomp_baselines.Byte_huffman.(serialize (compress data));
        reference = data;
        decode =
          (fun s ->
            Result.bind
              (Ccomp_baselines.Byte_huffman.deserialize_checked s ~pos:0)
              (fun (c, _) ->
                Ccomp_baselines.Byte_huffman.decompress_checked ~max_output:(String.length data)
                  c));
        integrity_checked = false;
      };
    ]
  in
  List.iter
    (fun codec ->
      let kinds = [| Injector.Flip; Byte; Trunc; Dup |] in
      let r = Campaign.run ~kinds ~seed:17 ~trials:150 codec in
      Alcotest.(check int)
        (codec.Campaign.name ^ " total")
        150
        (r.Campaign.detected + r.Campaign.recovered + r.Campaign.miscompared))
    codecs

(* --- memory-system degradation ----------------------------------------- *)

let fault_sim response ~fault_rate ?(detection = 1.0) () =
  let blocks = 256 in
  let lat = Lat.build (Array.make blocks 24) in
  (* sweep a footprint much larger than the cache so every pass misses *)
  let trace = Array.init 20_000 (fun i -> i * 32 mod (blocks * 32)) in
  let fault =
    { System.default_fault_config with fault_rate; response; detection; fault_seed = 5 }
  in
  let config cache_bytes fault =
    {
      (System.default_config ~cache_bytes ~decompressor:System.samc_decompressor ?fault ()) with
      clb_entries = 8;
    }
  in
  let clean = System.run (config 2048 None) ~lat ~trace () in
  let faulty = System.run (config 2048 (Some fault)) ~lat ~trace () in
  (clean, faulty)

let test_system_retry_counters () =
  let clean, faulty = fault_sim (System.Retry 3) ~fault_rate:0.2 () in
  Alcotest.(check bool) "faults injected" true (faulty.System.faults_injected > 0);
  Alcotest.(check bool) "retries happened" true (faulty.System.fault_retries > 0);
  Alcotest.(check int) "no stale lines under retry" 0 faulty.System.stale_lines;
  Alcotest.(check int) "nothing slips through" 0 faulty.System.undetected_faults;
  let slowdown = faulty.System.cpi /. clean.System.cpi in
  Alcotest.(check bool) "faults cost cycles" true (slowdown > 1.0);
  Alcotest.(check bool) "degradation bounded" true (slowdown < 3.0)

let test_system_trap_counters () =
  let clean, faulty = fault_sim System.Trap ~fault_rate:0.2 () in
  Alcotest.(check bool) "traps taken" true (faulty.System.fault_traps > 0);
  Alcotest.(check int) "no retries under trap" 0 faulty.System.fault_retries;
  let slowdown = faulty.System.cpi /. clean.System.cpi in
  Alcotest.(check bool) "degradation bounded" true (slowdown > 1.0 && slowdown < 4.0)

let test_system_stale_counters () =
  let clean, faulty = fault_sim System.Stale ~fault_rate:0.2 () in
  Alcotest.(check bool) "stale lines served" true (faulty.System.stale_lines > 0);
  Alcotest.(check int) "stale costs nothing extra" clean.System.total_cycles
    faulty.System.total_cycles

let test_system_undetected_faults () =
  let _, faulty = fault_sim (System.Retry 3) ~fault_rate:0.2 ~detection:0.0 () in
  Alcotest.(check bool) "faults injected" true (faulty.System.faults_injected > 0);
  Alcotest.(check int) "all slip through when detection is off"
    faulty.System.faults_injected faulty.System.undetected_faults;
  Alcotest.(check int) "no response without detection" 0
    (faulty.System.fault_retries + faulty.System.fault_traps)

let test_system_deterministic () =
  let _, f1 = fault_sim (System.Retry 2) ~fault_rate:0.1 () in
  let _, f2 = fault_sim (System.Retry 2) ~fault_rate:0.1 () in
  Alcotest.(check int) "same seed, same cycles" f1.System.total_cycles f2.System.total_cycles;
  Alcotest.(check int) "same seed, same faults" f1.System.faults_injected
    f2.System.faults_injected

let suite =
  [
    Alcotest.test_case "injector: deterministic from seed" `Quick test_injector_deterministic;
    Alcotest.test_case "injector: apply semantics + totality" `Quick test_injector_apply;
    Alcotest.test_case "injector: range-confined flips" `Quick test_injector_range;
    Alcotest.test_case "secf v2: tagged roundtrip (crc8 + crc16)" `Quick test_v2_roundtrip;
    Alcotest.test_case "secf v2: v1 writer byte-identical" `Quick test_v1_bytes_unchanged;
    Alcotest.test_case "secf v2: section map in bounds" `Quick test_sections_cover_image;
    Alcotest.test_case "secf v2: corruption localised to block" `Quick test_locate_corruption;
    Alcotest.test_case "huffman: deficient tables rejected" `Quick test_huffman_rejects_deficient;
    Alcotest.test_case "lzw: max_output enforced" `Quick test_lzw_max_output;
    Alcotest.test_case "lzss: max_output enforced" `Quick test_lzss_max_output;
    Alcotest.test_case "campaign: counts + determinism" `Quick test_campaign_counts;
    Alcotest.test_case "campaign: multi-fault sweep" `Quick test_campaign_multi_fault_sweep;
    Alcotest.test_case "campaign: unchecked baselines stay total" `Quick
      test_campaign_unchecked_baselines_total;
    Alcotest.test_case "system: retry response counters" `Quick test_system_retry_counters;
    Alcotest.test_case "system: trap response counters" `Quick test_system_trap_counters;
    Alcotest.test_case "system: stale response counters" `Quick test_system_stale_counters;
    Alcotest.test_case "system: undetected faults counted" `Quick test_system_undetected_faults;
    Alcotest.test_case "system: deterministic from fault seed" `Quick test_system_deterministic;
  ]
  @ List.map (fun c -> QCheck_alcotest.to_alcotest (prop_bit_flip_never_silent c)) (secf_codecs ())
