let () =
  Alcotest.run "ccomp"
    [
      ("prng", Test_prng.suite);
      ("heap", Test_heap.suite);
      ("bitio", Test_bitio.suite);
      ("entropy", Test_entropy.suite);
      ("huffman", Test_huffman.suite);
      ("arith", Test_arith.suite);
      ("mips", Test_mips.suite);
      ("mips-asm", Test_mips_asm.suite);
      ("x86", Test_x86.suite);
      ("dense16", Test_dense16.suite);
      ("progen", Test_progen.suite);
      ("stream-split", Test_stream_split.suite);
      ("markov", Test_markov.suite);
      ("samc", Test_samc.suite);
      ("nibble-decoder", Test_nibble.suite);
      ("sadc-isa", Test_sadc_isa.suite);
      ("sadc", Test_sadc.suite);
      ("baselines", Test_baselines.suite);
      ("ppm", Test_ppm.suite);
      ("memsys", Test_memsys.suite);
      ("image", Test_image.suite);
      ("fault", Test_fault.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("openmetrics", Test_openmetrics.suite);
      ("window", Test_window.suite);
      ("events", Test_events.suite);
      ("runtime", Test_runtime.suite);
      ("serve", Test_serve.suite);
      ("slow", Test_slow.suite);
      ("loadgen", Test_loadgen.suite);
      ("verify", Test_verify.suite);
      ("integration", Test_integration.suite);
    ]
