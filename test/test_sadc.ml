module Sadc = Ccomp_core.Sadc
module Mips = Ccomp_isa.Mips
module X86 = Ccomp_isa.X86
module P = Ccomp_progen
module Prng = Ccomp_util.Prng

let small name ops =
  { (P.Profile.find name) with P.Profile.name = "t"; target_ops = ops; functions = 8 }

let mips_code seed = (snd (P.Mips_backend.lower (P.Generator.generate ~seed (small "xlisp" 700)))).P.Layout.code

let x86_code seed = (snd (P.X86_backend.lower (P.Generator.generate ~seed (small "xlisp" 700)))).P.Layout.code

let cfg = Sadc.default_config ()

let test_roundtrip_mips () =
  let code = mips_code 1L in
  let z = Sadc.Mips.compress_image cfg code in
  Alcotest.(check int) "original size" (String.length code) (Sadc.Mips.original_size z);
  Alcotest.(check string) "roundtrip" code (Sadc.Mips.decompress z)

let test_roundtrip_x86 () =
  let code = x86_code 2L in
  let z = Sadc.X86.compress_image cfg code in
  Alcotest.(check string) "roundtrip" code (Sadc.X86.decompress z)

let test_block_isolation_mips () =
  let code = mips_code 3L in
  let z = Sadc.Mips.compress_image cfg code in
  let offset = ref 0 in
  for b = 0 to Sadc.Mips.block_count z - 1 do
    let instrs = Sadc.Mips.decompress_block z b in
    let bytes = Mips.encode_program instrs in
    Alcotest.(check string)
      (Printf.sprintf "block %d" b)
      (String.sub code !offset (String.length bytes))
      bytes;
    offset := !offset + String.length bytes
  done;
  Alcotest.(check int) "blocks tile the program" (String.length code) !offset

let test_block_original_sizes_mips () =
  (* fixed-width ISA: every block except possibly the last covers exactly
     block_size bytes *)
  let code = mips_code 4L in
  let z = Sadc.Mips.compress_image cfg code in
  for b = 0 to Sadc.Mips.block_count z - 2 do
    Alcotest.(check int) "full block" 32 (Sadc.Mips.block_original_bytes z b)
  done

let test_block_sizes_x86_bounded () =
  let code = x86_code 5L in
  let z = Sadc.X86.compress_image cfg code in
  for b = 0 to Sadc.X86.block_count z - 1 do
    Alcotest.(check bool) "within block size" true (Sadc.X86.block_original_bytes z b <= 32)
  done

let test_dictionary_bounds () =
  let code = mips_code 6L in
  let z = Sadc.Mips.compress_image cfg code in
  let st = Sadc.Mips.stats z in
  Alcotest.(check bool) "entries within cap" true (st.Sadc.entries <= 256);
  Alcotest.(check bool) "has base entries" true (st.Sadc.base_entries > 0);
  Alcotest.(check int) "partition of kinds" st.Sadc.entries
    (st.Sadc.base_entries + st.Sadc.group_entries + st.Sadc.specialized_entries)

let test_dictionary_entries_well_formed () =
  let code = mips_code 7L in
  let z = Sadc.Mips.compress_image cfg code in
  Array.iter
    (fun e ->
      Alcotest.(check bool) "non-empty entry" true (Array.length e.Sadc.Mips.prims > 0);
      Array.iter
        (fun p ->
          Alcotest.(check bool) "symbol in range" true
            (p.Sadc.Mips.sym >= 0 && p.Sadc.Mips.sym < Mips.opcode_count);
          List.iter
            (fun (s, pos, v) ->
              Alcotest.(check bool) "stream in range" true (s >= 0 && s < 3);
              Alcotest.(check bool) "pos plausible" true (pos >= 0 && pos < 4);
              Alcotest.(check bool) "value in stream range" true (v >= 0 && v < 1 lsl 26))
            p.Sadc.Mips.fixed)
        e.Sadc.Mips.prims)
    (Sadc.Mips.dictionary z)

let test_groups_learned_on_repetitive_code () =
  (* a program that is one idiom repeated must yield group entries *)
  let spec = Mips.spec_of_mnemonic in
  let idiom =
    [
      Mips.make (spec "lw") ~rs:4 ~rt:2 ~imm:8 ();
      Mips.make (spec "addiu") ~rs:2 ~rt:2 ~imm:1 ();
      Mips.make (spec "sw") ~rs:4 ~rt:2 ~imm:8 ();
      Mips.make (spec "bne") ~rs:2 ~rt:3 ~imm:0xfffc ();
    ]
  in
  let program = List.concat (List.init 200 (fun _ -> idiom)) in
  let z = Sadc.Mips.compress (Sadc.default_config ()) program in
  let st = Sadc.Mips.stats z in
  Alcotest.(check bool) "found groups" true (st.Sadc.group_entries > 0);
  Alcotest.(check bool)
    (Printf.sprintf "repetition compresses hard (%.3f)" (Sadc.Mips.ratio z))
    true
    (Sadc.Mips.ratio z < 0.2);
  Alcotest.(check string) "roundtrip" (Mips.encode_program program) (Sadc.Mips.decompress z)

let test_specialization_learned () =
  (* jr $31 with a hot register: the paper's own example. Neighbours are
     drawn from a 20-opcode rotation with random operands, so no opcode
     pair repeats often enough to beat the register specialization. *)
  let spec = Mips.spec_of_mnemonic in
  let g = Prng.create 8L in
  let fillers =
    [| "addu"; "subu"; "and"; "or"; "xor"; "slt"; "addiu"; "ori"; "andi"; "lw"; "sw"; "lb";
       "sb"; "lh"; "sh"; "lui"; "sll"; "srl"; "sra"; "nor" |]
  in
  let filler i =
    let sp = spec fillers.(i mod Array.length fillers) in
    let regs = List.init (Mips.reg_arity sp) (fun _ -> Prng.int g 32) in
    let imm = if Mips.has_immediate sp then Some (Prng.int g 65536) else None in
    Mips.reassemble sp ~regs ~imm ~limm:None
  in
  let program =
    List.concat (List.init 300 (fun i -> [ filler i; Mips.make (spec "jr") ~rs:31 () ]))
  in
  let z = Sadc.Mips.compress (Sadc.default_config ()) program in
  let has_jr31 =
    Array.exists
      (fun e ->
        Array.length e.Sadc.Mips.prims >= 1
        && Array.exists
             (fun p ->
               Mips.specs.(p.Sadc.Mips.sym).Mips.mnemonic = "jr"
               && List.exists (fun (s, _, v) -> s = 0 && v = 31) p.Sadc.Mips.fixed)
             e.Sadc.Mips.prims)
      (Sadc.Mips.dictionary z)
  in
  Alcotest.(check bool) "jr $31 specialised or grouped" true has_jr31;
  Alcotest.(check string) "roundtrip" (Mips.encode_program program) (Sadc.Mips.decompress z)

let test_max_entries_respected () =
  let code = mips_code 9L in
  let z = Sadc.Mips.compress_image (Sadc.default_config ~max_entries:64 ()) code in
  Alcotest.(check bool) "small cap respected" true ((Sadc.Mips.stats z).Sadc.entries <= 64);
  Alcotest.(check string) "roundtrip" code (Sadc.Mips.decompress z)

let test_smaller_dictionary_worse_ratio () =
  let code = mips_code 10L in
  let r64 = Sadc.Mips.ratio (Sadc.Mips.compress_image (Sadc.default_config ~max_entries:64 ()) code) in
  let r256 = Sadc.Mips.ratio (Sadc.Mips.compress_image cfg code) in
  Alcotest.(check bool) (Printf.sprintf "256 (%.3f) <= 64 (%.3f)" r256 r64) true (r256 <= r64 +. 0.005)

let test_block_size_variants () =
  let code = mips_code 11L in
  List.iter
    (fun block_size ->
      let z = Sadc.Mips.compress_image (Sadc.default_config ~block_size ()) code in
      Alcotest.(check string) (Printf.sprintf "block %d" block_size) code (Sadc.Mips.decompress z))
    [ 16; 32; 64; 128 ]

let test_x86_block_isolation () =
  let code = x86_code 12L in
  let z = Sadc.X86.compress_image cfg code in
  let total = ref 0 in
  for b = 0 to Sadc.X86.block_count z - 1 do
    let bytes = X86.encode_program (Sadc.X86.decompress_block z b) in
    Alcotest.(check int) "declared block size" (Sadc.X86.block_original_bytes z b)
      (String.length bytes);
    total := !total + String.length bytes
  done;
  Alcotest.(check int) "blocks cover program" (String.length code) !total

let test_undecodable_image_rejected () =
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Sadc.compress_image: image does not decode") (fun () ->
      ignore (Sadc.X86.compress_image cfg "\xf4\xf4\xf4"))

let test_serialization_roundtrip () =
  let code = mips_code 13L in
  let z = Sadc.Mips.compress_image cfg code in
  let s = Sadc.Mips.serialize z in
  let z', pos = Sadc.Mips.deserialize s ~pos:0 in
  Alcotest.(check int) "all consumed" (String.length s) pos;
  Alcotest.(check string) "decompresses after reload" code (Sadc.Mips.decompress z');
  Alcotest.(check int) "same dict size" (Sadc.Mips.stats z).Sadc.entries
    (Sadc.Mips.stats z').Sadc.entries

let test_ratio_better_than_tokens_alone () =
  (* sanity: sadc on real-ish code is clearly below 1.0 and accounting
     fields are consistent *)
  let code = mips_code 14L in
  let z = Sadc.Mips.compress_image cfg code in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f < 0.8" (Sadc.Mips.ratio z)) true (Sadc.Mips.ratio z < 0.8);
  Alcotest.(check bool) "with tables larger" true
    (Sadc.Mips.ratio_with_tables z > Sadc.Mips.ratio z);
  Alcotest.(check bool) "dict bytes positive" true (Sadc.Mips.dict_bytes z > 0);
  Alcotest.(check bool) "tables bytes positive" true (Sadc.Mips.tables_bytes z > 0)

(* --- incremental vs naive dictionary builder ------------------------- *)

let mips_instrs code = Mips.decode_program code |> Array.to_list |> List.map Option.get

(* The incremental builder must be observationally identical to the
   full-rescan reference: same dictionary entries (symbols, fixed
   operands, order) and same number of specialization rounds. *)
let prop_incremental_matches_naive =
  QCheck.Test.make ~name:"sadc mips: incremental dictionary builder matches naive" ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 1))
    (fun (seed, prof) ->
      let base = if prof = 0 then "xlisp" else "go" in
      let code =
        (snd
           (P.Mips_backend.lower
              (P.Generator.generate ~seed:(Int64.of_int (seed + 41)) (small base 500))))
          .P.Layout.code
      in
      let instrs = mips_instrs code in
      Sadc.Mips.For_tests.build_naive cfg instrs
      = Sadc.Mips.For_tests.build_incremental cfg instrs)

let test_incremental_counts_checked () =
  (* ~check:true re-derives every candidate count by full rescan at the
     start of each round and raises on any disagreement with the
     incrementally maintained counts — this exercises the per-round
     bookkeeping, not just the final dictionary. *)
  List.iter
    (fun (seed, c, label) ->
      let instrs = mips_instrs (mips_code seed) in
      let naive = Sadc.Mips.For_tests.build_naive c instrs in
      let checked = Sadc.Mips.For_tests.build_incremental ~check:true c instrs in
      Alcotest.(check bool) (label ^ ": dict and rounds equal") true (naive = checked);
      Alcotest.(check bool) (label ^ ": ran at least one round") true (snd checked >= 1))
    [
      (21L, cfg, "default config");
      (22L, cfg, "default config seed 22");
      (23L, Sadc.default_config ~max_rounds:64 (), "max_rounds 64");
    ]

let suite =
  [
    Alcotest.test_case "mips roundtrip" `Quick test_roundtrip_mips;
    Alcotest.test_case "x86 roundtrip" `Quick test_roundtrip_x86;
    Alcotest.test_case "mips block isolation" `Quick test_block_isolation_mips;
    Alcotest.test_case "mips block sizes" `Quick test_block_original_sizes_mips;
    Alcotest.test_case "x86 block sizes bounded" `Quick test_block_sizes_x86_bounded;
    Alcotest.test_case "dictionary bounds" `Quick test_dictionary_bounds;
    Alcotest.test_case "dictionary well-formed" `Quick test_dictionary_entries_well_formed;
    Alcotest.test_case "groups learned" `Quick test_groups_learned_on_repetitive_code;
    Alcotest.test_case "specialization learned" `Quick test_specialization_learned;
    Alcotest.test_case "max entries respected" `Quick test_max_entries_respected;
    Alcotest.test_case "dictionary size vs ratio" `Quick test_smaller_dictionary_worse_ratio;
    Alcotest.test_case "block size variants" `Quick test_block_size_variants;
    Alcotest.test_case "x86 block isolation" `Quick test_x86_block_isolation;
    Alcotest.test_case "undecodable image rejected" `Quick test_undecodable_image_rejected;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "ratio accounting" `Quick test_ratio_better_than_tokens_alone;
    Alcotest.test_case "incremental counts verified per round" `Quick
      test_incremental_counts_checked;
    QCheck_alcotest.to_alcotest prop_incremental_matches_naive;
  ]

let test_x86_field_streams_roundtrip () =
  let code = x86_code 15L in
  let z = Sadc.X86_fields.compress_image cfg code in
  Alcotest.(check string) "field-stream roundtrip" code (Sadc.X86_fields.decompress z);
  (* serialization of the 7-stream variant *)
  let z', _ = Sadc.X86_fields.deserialize (Sadc.X86_fields.serialize z) ~pos:0 in
  Alcotest.(check string) "after reload" code (Sadc.X86_fields.decompress z')

let test_x86_field_streams_block_isolation () =
  let code = x86_code 16L in
  let z = Sadc.X86_fields.compress_image cfg code in
  let total = ref 0 in
  for b = 0 to Sadc.X86_fields.block_count z - 1 do
    let bytes = X86.encode_program (Sadc.X86_fields.decompress_block z b) in
    total := !total + String.length bytes
  done;
  Alcotest.(check int) "blocks tile the program" (String.length code) !total

let field_suite =
  [
    Alcotest.test_case "x86 field streams roundtrip" `Quick test_x86_field_streams_roundtrip;
    Alcotest.test_case "x86 field streams blocks" `Quick test_x86_field_streams_block_isolation;
  ]

let suite = suite @ field_suite
