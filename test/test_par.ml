(* The parallel block pipeline (Ccomp_par.Pool) and the PR's fast decode
   kernels: pool semantics, serial-vs-parallel byte identity across the
   codecs, LUT-vs-tree Huffman decode equivalence, the widened bit I/O,
   and the refill engine's decoded-block cache. *)

module Pool = Ccomp_par.Pool
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader
module System = Ccomp_memsys.System
module Lat = Ccomp_memsys.Lat
module Prng = Ccomp_util.Prng
module P = Ccomp_progen

(* --- pool semantics ---------------------------------------------------- *)

let test_pool_order () =
  let a = Array.init 257 (fun i -> (i * 7) mod 64) in
  let f i x = (i * 1000) + x in
  Alcotest.(check (array int)) "mapi order-preserving" (Array.mapi f a) (Pool.mapi ~jobs:4 f a);
  Alcotest.(check (array int))
    "init order-preserving"
    (Array.init 100 (fun i -> i * i))
    (Pool.init ~jobs:3 100 (fun i -> i * i))

let test_pool_degenerate () =
  Alcotest.(check (array int)) "jobs=1 serial" [| 2; 4 |] (Pool.map ~jobs:1 (fun x -> 2 * x) [| 1; 2 |]);
  Alcotest.(check (array int)) "empty input" [||] (Pool.mapi ~jobs:4 (fun _ x -> x) [||]);
  Alcotest.(check (array int))
    "more jobs than items" [| 10 |]
    (Pool.map ~jobs:8 (fun x -> 10 * x) [| 1 |])

let test_pool_exception () =
  Alcotest.check_raises "worker exception reaches the caller" (Failure "boom") (fun () ->
      ignore (Pool.init ~jobs:4 64 (fun i -> if i = 41 then failwith "boom" else i)))

(* --- pool lifecycle (PR7: domains persist across dispatches) ----------- *)

let test_pool_persistent () =
  ignore (Pool.init ~jobs:3 64 (fun i -> i));
  let resident = Pool.pool_domains () in
  Alcotest.(check bool) "workers resident after a dispatch" true (resident >= 1);
  for _ = 1 to 5 do
    ignore (Pool.init ~jobs:3 64 (fun i -> i))
  done;
  Alcotest.(check int) "no respawn across dispatches" resident (Pool.pool_domains ())

let test_pool_survives_exception () =
  ignore (Pool.init ~jobs:3 16 (fun i -> i));
  let resident = Pool.pool_domains () in
  (try ignore (Pool.init ~jobs:3 64 (fun i -> if i = 7 then failwith "kaboom" else i))
   with Failure _ -> ());
  Alcotest.(check int) "workers survive a task exception" resident (Pool.pool_domains ());
  Alcotest.(check (array int))
    "next dispatch is clean"
    (Array.init 64 (fun i -> 2 * i))
    (Pool.init ~jobs:3 64 (fun i -> 2 * i))

let test_pool_shutdown_respawn () =
  ignore (Pool.init ~jobs:2 16 (fun i -> i));
  Pool.shutdown ();
  Alcotest.(check int) "shutdown empties the pool" 0 (Pool.pool_domains ());
  Alcotest.(check (array int))
    "pool respawns lazily"
    (Array.init 32 (fun i -> i + 1))
    (Pool.init ~jobs:2 32 (fun i -> i + 1));
  Alcotest.(check bool) "workers resident again" true (Pool.pool_domains () >= 1)

let test_pool_nested_rejected () =
  let saw = ref false in
  (try ignore (Pool.init ~jobs:2 8 (fun _ -> ignore (Pool.init ~jobs:2 8 (fun j -> j))))
   with Invalid_argument _ -> saw := true);
  Alcotest.(check bool) "nested dispatch rejected with Invalid_argument" true !saw;
  Alcotest.(check (array int))
    "pool usable after a rejected nested dispatch" [| 0; 1; 2; 3 |]
    (Pool.init ~jobs:2 4 (fun i -> i))

(* --- serial vs parallel byte identity ---------------------------------- *)

let mips_code seed =
  let profile =
    { (P.Profile.find "compress") with P.Profile.name = "t"; target_ops = 500; functions = 6 }
  in
  (snd (P.Mips_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

let x86_code seed =
  let profile =
    { (P.Profile.find "xlisp") with P.Profile.name = "t"; target_ops = 400; functions = 5 }
  in
  (snd (P.X86_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

let jobs_gen = QCheck.int_range 2 5

let prop_samc_mips_par_identity =
  QCheck.Test.make ~name:"samc mips: --jobs output byte-identical to serial" ~count:8
    QCheck.(pair jobs_gen (int_bound 3))
    (fun (jobs, seed) ->
      let code = mips_code (Int64.of_int seed) in
      let cfg = Samc.mips_config () in
      let serial = Samc.compress cfg code in
      let par = Samc.compress ~jobs cfg code in
      Samc.serialize serial = Samc.serialize par
      && Samc.decompress ~jobs serial = code
      && Samc.decompress serial = code)

let prop_samc_byte_par_identity =
  QCheck.Test.make ~name:"samc byte-mode: --jobs output byte-identical to serial" ~count:10
    QCheck.(pair jobs_gen (string_of_size (QCheck.Gen.int_range 1 2000)))
    (fun (jobs, data) ->
      let cfg = Samc.byte_config () in
      let serial = Samc.compress cfg data in
      let par = Samc.compress ~jobs cfg data in
      Samc.serialize serial = Samc.serialize par && Samc.decompress ~jobs par = data)

let prop_sadc_mips_par_identity =
  QCheck.Test.make ~name:"sadc mips: --jobs output byte-identical to serial" ~count:5
    QCheck.(pair jobs_gen (int_bound 2))
    (fun (jobs, seed) ->
      let code = mips_code (Int64.of_int seed) in
      let cfg = Sadc.default_config ~max_rounds:24 () in
      let serial = Sadc.Mips.compress_image cfg code in
      let par = Sadc.Mips.compress_image ~jobs cfg code in
      Sadc.Mips.serialize serial = Sadc.Mips.serialize par
      && Sadc.Mips.decompress ~jobs serial = code)

let prop_sadc_x86_par_identity =
  QCheck.Test.make ~name:"sadc x86: --jobs output byte-identical to serial" ~count:4
    QCheck.(pair jobs_gen (int_bound 2))
    (fun (jobs, seed) ->
      let code = x86_code (Int64.of_int seed) in
      let cfg = Sadc.default_config ~max_rounds:24 () in
      let serial = Sadc.X86.compress_image cfg code in
      let par = Sadc.X86.compress_image ~jobs cfg code in
      Sadc.X86.serialize serial = Sadc.X86.serialize par
      && Sadc.X86.decompress ~jobs serial = code)

let prop_byte_huffman_par_identity =
  QCheck.Test.make ~name:"byte-huffman: --jobs output byte-identical to serial" ~count:20
    QCheck.(pair jobs_gen (string_of_size (QCheck.Gen.int_range 1 3000)))
    (fun (jobs, data) ->
      let serial = Byte_huffman.compress data in
      let par = Byte_huffman.compress ~jobs data in
      Byte_huffman.serialize serial = Byte_huffman.serialize par
      && Byte_huffman.decompress par = data)

(* --- fast vs reference SAMC kernel ------------------------------------- *)

let test_samc_fast_kernel_equals_ref () =
  let code = mips_code 11L in
  let cfg = Samc.mips_config () in
  let z = Samc.compress cfg code in
  let words = String.length code / 4 in
  Array.iteri
    (fun b data ->
      let n_words = min 8 (words - (b * 8)) in
      let original_bytes = n_words * 4 in
      Alcotest.(check string)
        (Printf.sprintf "block %d" b)
        (Samc.decompress_block_ref cfg z.Samc.model ~original_bytes data)
        (Samc.decompress_block cfg z.Samc.model ~original_bytes data))
    z.Samc.blocks

(* --- LUT vs tree-walk Huffman decode ----------------------------------- *)

let prop_huffman_lut_equals_tree =
  (* Random length tables (via random counts, including skewed ones that
     produce codes longer than the LUT's first level) decode identically
     through the accelerated and the reference kernel. *)
  QCheck.Test.make ~name:"huffman LUT decode = tree decode" ~count:200
    QCheck.(pair (int_range 1 40) (list_of_size (QCheck.Gen.int_range 1 400) (int_bound 60)))
    (fun (alphabet, syms) ->
      let f = Freq.create (alphabet + 64) in
      (* skew: symbol s gets weight ~2^(s mod 17), forcing long codewords *)
      List.iter (fun s -> Freq.add_many f (s mod alphabet) (1 + (1 lsl (s mod 17)))) syms;
      let code = Huffman.build f in
      let syms = List.map (fun s -> s mod alphabet) syms in
      let present = List.filter (fun s -> Huffman.code_length code s > 0) syms in
      let w = Bit_writer.create () in
      List.iter (Huffman.encode_symbol code w) present;
      let bits = Bit_writer.contents w in
      let r_lut = Bit_reader.create bits in
      let r_tree = Bit_reader.create bits in
      List.for_all
        (fun s ->
          Huffman.decode_symbol code r_lut = s && Huffman.decode_symbol_tree code r_tree = s)
        present)

(* --- widened bit I/O --------------------------------------------------- *)

let mask_to w v = if w >= 63 then v else v land ((1 lsl w) - 1)

let prop_wide_fields_roundtrip =
  QCheck.Test.make ~name:"bit fields up to width 63 round-trip" ~count:300
    QCheck.(small_list (pair (int_range 1 63) int))
    (fun fields ->
      let fields = List.map (fun (w, v) -> (w, mask_to w v)) fields in
      let w = Bit_writer.create () in
      List.iter (fun (width, value) -> Bit_writer.put_bits w ~value ~width) fields;
      let r = Bit_reader.create (Bit_writer.contents w) in
      List.for_all (fun (width, value) -> Bit_reader.get_bits r width = value) fields)

let test_wide_width_edges () =
  let w = Bit_writer.create () in
  let v63 = -1 in
  (* all 63 bits set *)
  Bit_writer.put_bits w ~value:v63 ~width:63;
  Bit_writer.put_bits w ~value:0x5555_5555_5555 ~width:47;
  let r = Bit_reader.create (Bit_writer.contents w) in
  Alcotest.(check bool) "width 63 round-trips" true (Bit_reader.get_bits r 63 = v63);
  Alcotest.(check bool) "width 47 round-trips" true (Bit_reader.get_bits r 47 = 0x5555_5555_5555)

let test_peek_and_skip () =
  let w = Bit_writer.create () in
  Bit_writer.put_bits w ~value:0xABC ~width:12;
  Bit_writer.put_bits w ~value:0x5 ~width:3;
  let r = Bit_reader.create (Bit_writer.contents w) in
  Alcotest.(check int) "peek sees bits" 0xABC (Bit_reader.peek_bits r 12);
  Alcotest.(check int) "peek does not consume" 0xABC (Bit_reader.peek_bits r 12);
  Bit_reader.skip_bits r 12;
  Alcotest.(check int) "skip advanced" 0x5 (Bit_reader.get_bits r 3);
  (* past the end: peek zero-pads, like get_bits *)
  Alcotest.(check int) "peek past end zero-pads" 0 (Bit_reader.peek_bits r 8)

(* --- decoded-block cache in the refill engine -------------------------- *)

let loopy_trace n =
  let g = Prng.create 9L in
  let out = Array.make n 0 in
  let pc = ref 0 in
  for i = 0 to n - 1 do
    out.(i) <- !pc;
    if Prng.float g < 0.1 then pc := 4 * Prng.int g 1024 else pc := (!pc + 4) mod 4096
  done;
  out

let test_decode_cache_counters () =
  let trace = loopy_trace 50000 in
  let lat = Lat.build (Array.make 128 20) in
  let run entries =
    System.run
      (System.default_config ~cache_bytes:512 ~decompressor:System.samc_decompressor
         ~decode_cache_entries:entries ())
      ~lat ~trace ()
  in
  let off = run 0 in
  Alcotest.(check int) "disabled: no hits counted" 0 off.System.decode_cache_hits;
  Alcotest.(check int) "disabled: no misses counted" 0 off.System.decode_cache_misses;
  let on = run 64 in
  Alcotest.(check int) "every refill classified"
    on.System.misses
    (on.System.decode_cache_hits + on.System.decode_cache_misses);
  Alcotest.(check bool) "loopy trace hits the decode cache" true
    (on.System.decode_cache_hits > 0);
  Alcotest.(check bool) "decode-free refills save cycles" true
    (on.System.total_cycles <= off.System.total_cycles)

let suite =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool degenerate inputs" `Quick test_pool_degenerate;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool domains persist across dispatches" `Quick test_pool_persistent;
    Alcotest.test_case "pool survives a task exception" `Quick test_pool_survives_exception;
    Alcotest.test_case "pool shutdown joins and respawns" `Quick test_pool_shutdown_respawn;
    Alcotest.test_case "nested dispatch is rejected" `Quick test_pool_nested_rejected;
    QCheck_alcotest.to_alcotest prop_samc_mips_par_identity;
    QCheck_alcotest.to_alcotest prop_samc_byte_par_identity;
    QCheck_alcotest.to_alcotest prop_sadc_mips_par_identity;
    QCheck_alcotest.to_alcotest prop_sadc_x86_par_identity;
    QCheck_alcotest.to_alcotest prop_byte_huffman_par_identity;
    Alcotest.test_case "samc fast kernel = reference kernel" `Quick
      test_samc_fast_kernel_equals_ref;
    QCheck_alcotest.to_alcotest prop_huffman_lut_equals_tree;
    QCheck_alcotest.to_alcotest prop_wide_fields_roundtrip;
    Alcotest.test_case "width 63 and 47 fields" `Quick test_wide_width_edges;
    Alcotest.test_case "peek and skip" `Quick test_peek_and_skip;
    Alcotest.test_case "decoded-block cache counters" `Quick test_decode_cache_counters;
  ]
