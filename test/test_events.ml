(* Structured event log: ring overflow keeps the newest events, level
   filtering, the disabled path records nothing, and the JSON-lines
   sink leaves parseable evidence on disk. *)

module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events

(* Event state is process-global; restore defaults however the test
   exits. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Events.set_sink None;
      Events.set_enabled false;
      Events.set_level Events.Debug;
      Events.set_capacity 1024;
      Events.clear ())
    (fun () ->
      Events.clear ();
      Events.set_capacity 1024;
      Events.set_level Events.Debug;
      Events.set_enabled true;
      f ())

let names () = List.map (fun e -> e.Events.ev_name) (Events.tail max_int)

let test_disabled_records_nothing () =
  isolated @@ fun () ->
  Events.set_enabled false;
  Events.info "ignored";
  Events.error "also ignored";
  Alcotest.(check int) "nothing recorded" 0 (Events.total ());
  Alcotest.(check (list string)) "empty tail" [] (names ())

let test_tail_order () =
  isolated @@ fun () ->
  Events.info "a";
  Events.warn "b";
  Events.error "c";
  Alcotest.(check int) "three recorded" 3 (Events.total ());
  Alcotest.(check int) "none dropped" 0 (Events.dropped ());
  Alcotest.(check (list string)) "oldest first" [ "a"; "b"; "c" ] (names ());
  Alcotest.(check (list string)) "tail n bounds from the newest end" [ "b"; "c" ]
    (List.map (fun e -> e.Events.ev_name) (Events.tail 2))

let test_ring_overflow () =
  isolated @@ fun () ->
  Events.set_capacity 4;
  for i = 0 to 9 do
    Events.info (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "all ten counted" 10 (Events.total ());
  Alcotest.(check int) "six overwritten" 6 (Events.dropped ());
  Alcotest.(check (list string)) "ring keeps the newest four, in order"
    [ "e6"; "e7"; "e8"; "e9" ] (names ())

let test_level_filter () =
  isolated @@ fun () ->
  Events.set_level Events.Warn;
  Events.debug "d";
  Events.info "i";
  Events.warn "w";
  Events.error "e";
  Alcotest.(check (list string)) "below-level events dropped" [ "w"; "e" ] (names ());
  Alcotest.(check int) "total counts only recorded events" 2 (Events.total ())

(* ISSUE-8 [?min_level] read-side filter: "the last n warnings", not
   "warnings among the last n" — the whole ring is filtered at or
   above the floor, THEN the newest n are kept. *)
let test_tail_min_level () =
  isolated @@ fun () ->
  Events.debug "d1";
  Events.warn "w1";
  Events.info "i1";
  Events.error "e1";
  Events.debug "d2";
  Events.warn "w2";
  let names ?min_level n =
    List.map (fun e -> e.Events.ev_name) (Events.tail ?min_level n)
  in
  Alcotest.(check (list string)) "no floor: plain tail" [ "d2"; "w2" ] (names 2);
  Alcotest.(check (list string)) "warn floor keeps warn and error"
    [ "w1"; "e1"; "w2" ]
    (names ~min_level:Events.Warn max_int);
  Alcotest.(check (list string)) "filter before truncation: last 2 warnings"
    [ "e1"; "w2" ]
    (names ~min_level:Events.Warn 2);
  Alcotest.(check (list string)) "error floor" [ "e1" ] (names ~min_level:Events.Error 10);
  Alcotest.(check (list string)) "n=0 is empty" [] (names ~min_level:Events.Warn 0);
  (* a floor above everything recorded matches nothing *)
  Events.clear ();
  Events.debug "only";
  Alcotest.(check (list string)) "no match above the floor" []
    (names ~min_level:Events.Info 10);
  (* tail_json honours the same floor *)
  Events.warn "w3";
  Alcotest.(check int) "tail_json filters too" 1
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (Events.tail_json ~min_level:Events.Warn 10))))

let test_level_strings () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Events.level_to_string l))
        true
        (Events.level_of_string (Events.level_to_string l) = Some l))
    [ Events.Debug; Events.Info; Events.Warn; Events.Error ];
  Alcotest.(check bool) "unknown level rejected" true
    (Events.level_of_string "loud" = None)

let test_json_line_shape () =
  isolated @@ fun () ->
  Events.warn ~fields:[ ("response", "trap"); ("note", "a\"b") ] "memsys.fault";
  match Events.tail 1 with
  | [ e ] ->
    let line = Events.to_json_line e in
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
      in
      go 0
    in
    List.iter
      (fun sub -> Alcotest.(check bool) (Printf.sprintf "has %s" sub) true (contains sub))
      [
        "\"ts_us\":";
        "\"level\":\"warn\"";
        "\"event\":\"memsys.fault\"";
        "\"response\":\"trap\"";
        "\"note\":\"a\\\"b\"";
      ];
    (match Obs.Json.parse line with
    | Ok _ -> ()
    | Error err -> Alcotest.failf "line must be valid JSON: %s" err);
    Alcotest.(check bool) "single line" true (not (String.contains line '\n'))
  | l -> Alcotest.failf "expected one event, got %d" (List.length l)

let test_file_sink () =
  isolated @@ fun () ->
  let path = Filename.temp_file "ccomp_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Events.set_sink (Some path);
      Events.info ~fields:[ ("k", "v") ] "one";
      Events.error "two";
      Events.set_sink None;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one JSON line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "sink line not JSON: %s" e)
        lines)

(* SIGTERM-mid-write discipline: the sink flushes whole lines, so a
   killed process can tear only the final one. load_sink_file must
   shrug that off — and must NOT shrug off corruption anywhere else. *)
let with_temp_sink f =
  let path = Filename.temp_file "ccomp_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".1" ])
    (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_sink_readback_clean () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  Events.set_sink (Some path);
  Events.info ~fields:[ ("k", "v") ] "one";
  Events.error "two";
  Events.set_sink None;
  match Events.load_sink_file path with
  | Ok lines -> Alcotest.(check int) "both records readable" 2 (List.length lines)
  | Error e -> Alcotest.failf "clean sink must read back: %s" e

let test_sink_readback_torn_tail () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  (* simulate SIGTERM mid-write: two complete records, then a line cut
     off partway through — no newline, unbalanced JSON *)
  Events.set_sink (Some path);
  Events.info "one";
  Events.warn "two";
  Events.set_sink None;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"ts_us\":123.0,\"level\":\"info\",\"ev";
  close_out oc;
  (match Events.load_sink_file path with
  | Ok lines -> Alcotest.(check int) "torn tail dropped, earlier records intact" 2 (List.length lines)
  | Error e -> Alcotest.failf "a torn final line must be tolerated: %s" e);
  (* same torn tail with a trailing newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "\n";
  close_out oc;
  match Events.load_sink_file path with
  | Ok lines -> Alcotest.(check int) "newline-terminated torn tail dropped" 2 (List.length lines)
  | Error e -> Alcotest.failf "a torn final line must be tolerated: %s" e

let test_sink_readback_interior_corruption () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  write_file path
    "{\"ts_us\":1.0,\"level\":\"info\",\"event\":\"a\"}\n\
     {\"ts_us\":2.0,\"level\":\"in\n\
     {\"ts_us\":3.0,\"level\":\"info\",\"event\":\"c\"}\n";
  match Events.load_sink_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption before the final line must be an error, not tolerated"

let test_sink_survives_kill_mid_write () =
  (* SIGTERM/SIGKILL mid-write can stop the sink at ANY byte of the
     record being written (everything earlier is safe: the sink
     flushes whole lines). Simulate every possible cut point of the
     final record and demand the earlier records always read back. *)
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  Events.set_sink (Some path);
  for i = 1 to 5 do
    Events.info ~fields:[ ("i", string_of_int i); ("quoted", "a\"b") ] "job.done"
  done;
  Events.set_sink None;
  let whole =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (* byte offset where the final record starts *)
  let last_start = String.rindex (String.trim whole) '\n' + 1 in
  for cut = last_start to String.length whole do
    write_file path (String.sub whole 0 cut);
    match Events.load_sink_file path with
    | Ok lines ->
      let n = List.length lines in
      (* a cut inside the last record leaves 4; a cut at (or one byte
         short of) the end leaves the complete record too *)
      Alcotest.(check bool)
        (Printf.sprintf "cut at byte %d keeps the 4 safe records" cut)
        true
        (n = 4 || (n = 5 && cut >= String.length whole - 1))
    | Error e -> Alcotest.failf "cut at byte %d must be tolerated: %s" cut e
  done

(* --- size-capped sink rotation (ISSUE 9) --------------------------------- *)

let file_size path = (Unix.stat path).Unix.st_size

let test_sink_rotation () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  let cap = 160 in
  Events.set_sink ~max_bytes:cap (Some path);
  for i = 1 to 12 do
    Events.info ~fields:[ ("i", string_of_int i) ] "rotation.probe"
  done;
  Events.set_sink None;
  Alcotest.(check bool) "rotation happened" true (Sys.file_exists (path ^ ".1"));
  (* rotate-before-breach: neither the live file nor the rotation may
     exceed the cap (no single record here is oversized) *)
  Alcotest.(check bool) "live file within cap" true (file_size path <= cap);
  Alcotest.(check bool) "rotated file within cap" true (file_size (path ^ ".1") <= cap);
  let load p =
    match Events.load_sink_file p with
    | Ok lines -> lines
    | Error e -> Alcotest.failf "%s must read back cleanly after rotation: %s" p e
  in
  let live = load path and old = load (path ^ ".1") in
  Alcotest.(check bool) "both files hold records" true (live <> [] && old <> []);
  (* the newest record is always in the live file *)
  let has_i line i =
    let needle = Printf.sprintf "\"i\":\"%d\"" i in
    let n = String.length needle in
    let rec go j = j + n <= String.length line && (String.sub line j n = needle || go (j + 1)) in
    go 0
  in
  Alcotest.(check bool) "newest record in live file" true
    (has_i (List.nth live (List.length live - 1)) 12)

let test_sink_oversized_record_lands () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  (* a record larger than the whole cap must still land (an empty file
     is never rotated), and the NEXT record rotates it away *)
  Events.set_sink ~max_bytes:8 (Some path);
  Events.info ~fields:[ ("k", String.make 64 'x') ] "big.one";
  Alcotest.(check bool) "no rotation of an empty file" true
    (not (Sys.file_exists (path ^ ".1")));
  Alcotest.(check bool) "oversized record landed" true (file_size path > 8);
  Events.info "after";
  Events.set_sink None;
  Alcotest.(check bool) "second record rotated the oversized one" true
    (Sys.file_exists (path ^ ".1"));
  (match Events.load_sink_file (path ^ ".1") with
  | Ok [ line ] ->
    Alcotest.(check bool) "rotation holds the oversized record" true
      (String.length line > 8)
  | Ok l -> Alcotest.failf "expected 1 rotated record, got %d" (List.length l)
  | Error e -> Alcotest.failf "rotated file must parse: %s" e);
  match Events.load_sink_file path with
  | Ok [ _ ] -> ()
  | Ok l -> Alcotest.failf "expected 1 live record, got %d" (List.length l)
  | Error e -> Alcotest.failf "live file must parse: %s" e

let test_sink_rotation_across_restart () =
  isolated @@ fun () ->
  with_temp_sink @@ fun path ->
  (* first daemon run fills the file near the cap... *)
  Events.set_sink ~max_bytes:4096 (Some path);
  for i = 1 to 3 do
    Events.info ~fields:[ ("i", string_of_int i) ] "run.one"
  done;
  Events.set_sink None;
  let size_after_first = file_size path in
  Alcotest.(check bool) "first run wrote records" true (size_after_first > 0);
  (* ...the restart reopens it with a cap the existing size already
     exceeds: the very next write must rotate, not append forever *)
  Events.set_sink ~max_bytes:(size_after_first + 1) (Some path);
  Events.info "run.two";
  Events.set_sink None;
  Alcotest.(check bool) "restart rotated the inherited file" true
    (Sys.file_exists (path ^ ".1"));
  match (Events.load_sink_file path, Events.load_sink_file (path ^ ".1")) with
  | Ok live, Ok old ->
    Alcotest.(check int) "old records rotated" 3 (List.length old);
    Alcotest.(check int) "new record in fresh live file" 1 (List.length live)
  | Error e, _ | _, Error e -> Alcotest.failf "post-restart files must parse: %s" e

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "tail is oldest-first and bounded" `Quick test_tail_order;
    Alcotest.test_case "ring overflow keeps the newest" `Quick test_ring_overflow;
    Alcotest.test_case "level filtering" `Quick test_level_filter;
    Alcotest.test_case "tail min_level filters before truncation" `Quick test_tail_min_level;
    Alcotest.test_case "level string round-trip" `Quick test_level_strings;
    Alcotest.test_case "JSON line shape" `Quick test_json_line_shape;
    Alcotest.test_case "file sink appends JSON lines" `Quick test_file_sink;
    Alcotest.test_case "sink read-back: clean file" `Quick test_sink_readback_clean;
    Alcotest.test_case "sink read-back: torn final line tolerated" `Quick
      test_sink_readback_torn_tail;
    Alcotest.test_case "sink read-back: interior corruption rejected" `Quick
      test_sink_readback_interior_corruption;
    Alcotest.test_case "sink survives SIGKILL mid-write" `Quick test_sink_survives_kill_mid_write;
    Alcotest.test_case "sink rotates at the size cap" `Quick test_sink_rotation;
    Alcotest.test_case "oversized record lands before rotating" `Quick
      test_sink_oversized_record_lands;
    Alcotest.test_case "rotation accounts for an inherited file" `Quick
      test_sink_rotation_across_restart;
  ]
