(* Structured event log: ring overflow keeps the newest events, level
   filtering, the disabled path records nothing, and the JSON-lines
   sink leaves parseable evidence on disk. *)

module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events

(* Event state is process-global; restore defaults however the test
   exits. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Events.set_sink None;
      Events.set_enabled false;
      Events.set_level Events.Debug;
      Events.set_capacity 1024;
      Events.clear ())
    (fun () ->
      Events.clear ();
      Events.set_capacity 1024;
      Events.set_level Events.Debug;
      Events.set_enabled true;
      f ())

let names () = List.map (fun e -> e.Events.ev_name) (Events.tail max_int)

let test_disabled_records_nothing () =
  isolated @@ fun () ->
  Events.set_enabled false;
  Events.info "ignored";
  Events.error "also ignored";
  Alcotest.(check int) "nothing recorded" 0 (Events.total ());
  Alcotest.(check (list string)) "empty tail" [] (names ())

let test_tail_order () =
  isolated @@ fun () ->
  Events.info "a";
  Events.warn "b";
  Events.error "c";
  Alcotest.(check int) "three recorded" 3 (Events.total ());
  Alcotest.(check int) "none dropped" 0 (Events.dropped ());
  Alcotest.(check (list string)) "oldest first" [ "a"; "b"; "c" ] (names ());
  Alcotest.(check (list string)) "tail n bounds from the newest end" [ "b"; "c" ]
    (List.map (fun e -> e.Events.ev_name) (Events.tail 2))

let test_ring_overflow () =
  isolated @@ fun () ->
  Events.set_capacity 4;
  for i = 0 to 9 do
    Events.info (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "all ten counted" 10 (Events.total ());
  Alcotest.(check int) "six overwritten" 6 (Events.dropped ());
  Alcotest.(check (list string)) "ring keeps the newest four, in order"
    [ "e6"; "e7"; "e8"; "e9" ] (names ())

let test_level_filter () =
  isolated @@ fun () ->
  Events.set_level Events.Warn;
  Events.debug "d";
  Events.info "i";
  Events.warn "w";
  Events.error "e";
  Alcotest.(check (list string)) "below-level events dropped" [ "w"; "e" ] (names ());
  Alcotest.(check int) "total counts only recorded events" 2 (Events.total ())

let test_level_strings () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Events.level_to_string l))
        true
        (Events.level_of_string (Events.level_to_string l) = Some l))
    [ Events.Debug; Events.Info; Events.Warn; Events.Error ];
  Alcotest.(check bool) "unknown level rejected" true
    (Events.level_of_string "loud" = None)

let test_json_line_shape () =
  isolated @@ fun () ->
  Events.warn ~fields:[ ("response", "trap"); ("note", "a\"b") ] "memsys.fault";
  match Events.tail 1 with
  | [ e ] ->
    let line = Events.to_json_line e in
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
      in
      go 0
    in
    List.iter
      (fun sub -> Alcotest.(check bool) (Printf.sprintf "has %s" sub) true (contains sub))
      [
        "\"ts_us\":";
        "\"level\":\"warn\"";
        "\"event\":\"memsys.fault\"";
        "\"response\":\"trap\"";
        "\"note\":\"a\\\"b\"";
      ];
    (match Obs.Json.parse line with
    | Ok _ -> ()
    | Error err -> Alcotest.failf "line must be valid JSON: %s" err);
    Alcotest.(check bool) "single line" true (not (String.contains line '\n'))
  | l -> Alcotest.failf "expected one event, got %d" (List.length l)

let test_file_sink () =
  isolated @@ fun () ->
  let path = Filename.temp_file "ccomp_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Events.set_sink (Some path);
      Events.info ~fields:[ ("k", "v") ] "one";
      Events.error "two";
      Events.set_sink None;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one JSON line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "sink line not JSON: %s" e)
        lines)

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "tail is oldest-first and bounded" `Quick test_tail_order;
    Alcotest.test_case "ring overflow keeps the newest" `Quick test_ring_overflow;
    Alcotest.test_case "level filtering" `Quick test_level_filter;
    Alcotest.test_case "level string round-trip" `Quick test_level_strings;
    Alcotest.test_case "JSON line shape" `Quick test_json_line_shape;
    Alcotest.test_case "file sink appends JSON lines" `Quick test_file_sink;
  ]
