module Obs = Ccomp_obs.Obs
module Samc = Ccomp_core.Samc
module Byte_huffman = Ccomp_baselines.Byte_huffman

(* The registry and the enabled switches are process-global, so every
   test restores a clean slate (all metrics zeroed, observation off)
   no matter how it exits. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.set_tracing false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      f ())

let test_counter_monotonic () =
  isolated @@ fun () ->
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: counters are monotonic (negative increment)") (fun () ->
      Obs.Counter.add c (-1));
  Alcotest.(check int) "value unchanged after rejected add" 42 (Obs.Counter.value c)

let test_counter_shared () =
  isolated @@ fun () ->
  let a = Obs.Counter.make "test.shared" in
  let b = Obs.Counter.make "test.shared" in
  Obs.Counter.add a 5;
  Obs.Counter.add b 7;
  Alcotest.(check int) "same name, same counter" 12 (Obs.Counter.value a)

let test_histogram_percentiles () =
  isolated @@ fun () ->
  let h = Obs.Histogram.make "test.hist" in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Obs.Histogram.percentile h 50.0);
  for i = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count exact" 1000 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum exact" 500500.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min exact" 1.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max exact" 1000.0 (Obs.Histogram.max_value h);
  (* log-scale buckets (8 per octave) bound percentile error at ~9% *)
  List.iter
    (fun (q, expected) ->
      let got = Obs.Histogram.percentile h q in
      let rel = abs_float (got -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f=%.1f within 10%% of %.1f" q got expected)
        true (rel < 0.10))
    [ (50.0, 500.0); (95.0, 950.0); (99.0, 990.0); (100.0, 1000.0) ];
  Alcotest.(check bool) "percentiles stay within [min, max]" true
    (List.for_all
       (fun q ->
         let p = Obs.Histogram.percentile h q in
         p >= 1.0 && p <= 1000.0)
       [ 0.0; 50.0; 95.0; 99.0; 100.0 ])

let test_snapshot_roundtrip () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "test.rt.counter") 123;
  Obs.Gauge.set (Obs.Gauge.make "test.rt.gauge") 0.75;
  let h = Obs.Histogram.make "test.rt.hist" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 10.0; 100.0 ];
  let snap = Obs.snapshot () in
  match Obs.snapshot_of_json (Obs.snapshot_to_json snap) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok back ->
    Alcotest.(check (list (pair string int))) "counters survive" snap.Obs.counters
      back.Obs.counters;
    Alcotest.(check int) "gauge count" (List.length snap.Obs.gauges)
      (List.length back.Obs.gauges);
    List.iter2
      (fun (n, v) (n', v') ->
        Alcotest.(check string) "gauge name" n n';
        Alcotest.(check (float 1e-6)) ("gauge " ^ n) v v')
      snap.Obs.gauges back.Obs.gauges;
    List.iter2
      (fun (h : Obs.histogram_stats) (h' : Obs.histogram_stats) ->
        Alcotest.(check string) "hist name" h.Obs.hs_name h'.Obs.hs_name;
        Alcotest.(check int) "hist count" h.Obs.hs_count h'.Obs.hs_count;
        Alcotest.(check (float 1e-3)) "hist sum" h.Obs.hs_sum h'.Obs.hs_sum;
        Alcotest.(check (float 1e-3)) "hist p95" h.Obs.hs_p95 h'.Obs.hs_p95)
      snap.Obs.histograms back.Obs.histograms

let test_reset_clears () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "test.reset.c") 9;
  Obs.Histogram.observe (Obs.Histogram.make "test.reset.h") 3.0;
  Obs.reset ();
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "no counter survives reset" true
    (not (List.mem_assoc "test.reset.c" snap.Obs.counters));
  Alcotest.(check bool) "no histogram survives reset" true
    (List.for_all (fun h -> h.Obs.hs_name <> "test.reset.h") snap.Obs.histograms)

let test_span_records () =
  isolated @@ fun () ->
  Obs.set_tracing true;
  let before = Obs.event_count () in
  let v, dt = Obs.timed ~cat:"test" "test.span" (fun () -> 17) in
  Alcotest.(check int) "timed returns value" 17 v;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  Alcotest.(check int) "one slice recorded" (before + 1) (Obs.event_count ());
  let j = Obs.trace_json () in
  Alcotest.(check bool) "trace is an array" true (String.length j > 0 && j.[0] = '[');
  let contains needle hay =
    let n = String.length needle and ln = String.length hay in
    let rec go i = i + n <= ln && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "slice named" true (contains "\"test.span\"" j)

(* Concurrent increments from the par pool must not lose updates:
   counters are atomics, histogram observation takes the registry
   mutex. *)
let test_parallel_increments () =
  isolated @@ fun () ->
  Obs.set_metrics true;
  let c = Obs.Counter.make "test.par.counter" in
  let h = Obs.Histogram.make "test.par.hist" in
  let n = 4000 in
  let results =
    Ccomp_par.Pool.map ~jobs:4
      (fun i ->
        Obs.Counter.incr c;
        Obs.Histogram.observe h (float_of_int (1 + (i mod 64)));
        i)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check int) "pool mapped everything" n (Array.length results);
  Alcotest.(check int) "no lost counter increment" n (Obs.Counter.value c);
  Alcotest.(check int) "no lost histogram observation" n (Obs.Histogram.count h)

(* The byte-identity guarantee: switching metrics and tracing on must
   not change a single bit of any codec's output. *)
let obs_identity_test name gen encode =
  QCheck.Test.make ~count:30 ~name gen (fun input ->
      isolated @@ fun () ->
      let plain = encode input in
      Obs.set_metrics true;
      Obs.set_tracing true;
      let observed = encode input in
      String.equal plain observed)

let word_string =
  let g =
    QCheck.Gen.(
      int_range 1 48 >>= fun words ->
      map Bytes.unsafe_to_string (bytes_size (return (4 * words))))
  in
  QCheck.make ~print:(Printf.sprintf "%S") g

let samc_identity =
  obs_identity_test "samc compress identical under obs" word_string (fun s ->
      let cfg = Samc.byte_config ~block_size:16 () in
      let z = Samc.compress cfg s in
      String.concat "" (Array.to_list z.Samc.blocks) ^ Samc.decompress z)

let huffman_identity =
  obs_identity_test "byte-huffman serialize identical under obs"
    QCheck.(string_of_size Gen.(int_range 1 512))
    (fun s -> Byte_huffman.serialize (Byte_huffman.compress ~block_size:16 s))

let suite =
  [
    Alcotest.test_case "counter monotonic + rejects negative" `Quick test_counter_monotonic;
    Alcotest.test_case "counter registry is get-or-create" `Quick test_counter_shared;
    Alcotest.test_case "histogram percentiles within bucket error" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "snapshot JSON round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "reset clears values" `Quick test_reset_clears;
    Alcotest.test_case "timed records a trace slice" `Quick test_span_records;
    Alcotest.test_case "parallel increments lose nothing" `Quick test_parallel_increments;
    QCheck_alcotest.to_alcotest samc_identity;
    QCheck_alcotest.to_alcotest huffman_identity;
  ]
