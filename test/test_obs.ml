module Obs = Ccomp_obs.Obs
module Samc = Ccomp_core.Samc
module Byte_huffman = Ccomp_baselines.Byte_huffman

(* The registry and the enabled switches are process-global, so every
   test restores a clean slate (all metrics zeroed, observation off)
   no matter how it exits. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.set_tracing false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      f ())

let test_counter_monotonic () =
  isolated @@ fun () ->
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: counters are monotonic (negative increment)") (fun () ->
      Obs.Counter.add c (-1));
  Alcotest.(check int) "value unchanged after rejected add" 42 (Obs.Counter.value c)

let test_counter_shared () =
  isolated @@ fun () ->
  let a = Obs.Counter.make "test.shared" in
  let b = Obs.Counter.make "test.shared" in
  Obs.Counter.add a 5;
  Obs.Counter.add b 7;
  Alcotest.(check int) "same name, same counter" 12 (Obs.Counter.value a)

let test_histogram_percentiles () =
  isolated @@ fun () ->
  let h = Obs.Histogram.make "test.hist" in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Obs.Histogram.percentile h 50.0);
  for i = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count exact" 1000 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum exact" 500500.0 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "min exact" 1.0 (Obs.Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max exact" 1000.0 (Obs.Histogram.max_value h);
  (* log-scale buckets (8 per octave) bound percentile error at ~9% *)
  List.iter
    (fun (q, expected) ->
      let got = Obs.Histogram.percentile h q in
      let rel = abs_float (got -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f=%.1f within 10%% of %.1f" q got expected)
        true (rel < 0.10))
    [ (50.0, 500.0); (95.0, 950.0); (99.0, 990.0); (100.0, 1000.0) ];
  Alcotest.(check bool) "percentiles stay within [min, max]" true
    (List.for_all
       (fun q ->
         let p = Obs.Histogram.percentile h q in
         p >= 1.0 && p <= 1000.0)
       [ 0.0; 50.0; 95.0; 99.0; 100.0 ])

let test_snapshot_roundtrip () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "test.rt.counter") 123;
  Obs.Gauge.set (Obs.Gauge.make "test.rt.gauge") 0.75;
  let h = Obs.Histogram.make "test.rt.hist" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 10.0; 100.0 ];
  let snap = Obs.snapshot () in
  match Obs.snapshot_of_json (Obs.snapshot_to_json snap) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok back ->
    Alcotest.(check (list (pair string int))) "counters survive" snap.Obs.counters
      back.Obs.counters;
    Alcotest.(check int) "gauge count" (List.length snap.Obs.gauges)
      (List.length back.Obs.gauges);
    List.iter2
      (fun (n, v) (n', v') ->
        Alcotest.(check string) "gauge name" n n';
        Alcotest.(check (float 1e-6)) ("gauge " ^ n) v v')
      snap.Obs.gauges back.Obs.gauges;
    List.iter2
      (fun (h : Obs.histogram_stats) (h' : Obs.histogram_stats) ->
        Alcotest.(check string) "hist name" h.Obs.hs_name h'.Obs.hs_name;
        Alcotest.(check int) "hist count" h.Obs.hs_count h'.Obs.hs_count;
        Alcotest.(check (float 1e-3)) "hist sum" h.Obs.hs_sum h'.Obs.hs_sum;
        Alcotest.(check (float 1e-3)) "hist p95" h.Obs.hs_p95 h'.Obs.hs_p95)
      snap.Obs.histograms back.Obs.histograms

let test_reset_clears () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "test.reset.c") 9;
  Obs.Histogram.observe (Obs.Histogram.make "test.reset.h") 3.0;
  Obs.reset ();
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "no counter survives reset" true
    (not (List.mem_assoc "test.reset.c" snap.Obs.counters));
  Alcotest.(check bool) "no histogram survives reset" true
    (List.for_all (fun h -> h.Obs.hs_name <> "test.reset.h") snap.Obs.histograms)

let test_span_records () =
  isolated @@ fun () ->
  Obs.set_tracing true;
  let before = Obs.event_count () in
  let v, dt = Obs.timed ~cat:"test" "test.span" (fun () -> 17) in
  Alcotest.(check int) "timed returns value" 17 v;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  Alcotest.(check int) "one slice recorded" (before + 1) (Obs.event_count ());
  let j = Obs.trace_json () in
  Alcotest.(check bool) "trace is an array" true (String.length j > 0 && j.[0] = '[');
  let contains needle hay =
    let n = String.length needle and ln = String.length hay in
    let rec go i = i + n <= ln && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "slice named" true (contains "\"test.span\"" j)

(* Concurrent increments from the par pool must not lose updates:
   counters are atomics, histogram observation takes the registry
   mutex. *)
let test_parallel_increments () =
  isolated @@ fun () ->
  Obs.set_metrics true;
  let c = Obs.Counter.make "test.par.counter" in
  let h = Obs.Histogram.make "test.par.hist" in
  let n = 4000 in
  let results =
    Ccomp_par.Pool.map ~jobs:4
      (fun i ->
        Obs.Counter.incr c;
        Obs.Histogram.observe h (float_of_int (1 + (i mod 64)));
        i)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check int) "pool mapped everything" n (Array.length results);
  Alcotest.(check int) "no lost counter increment" n (Obs.Counter.value c);
  Alcotest.(check int) "no lost histogram observation" n (Obs.Histogram.count h)

(* The byte-identity guarantee: switching metrics and tracing on must
   not change a single bit of any codec's output. *)
let obs_identity_test name gen encode =
  QCheck.Test.make ~count:30 ~name gen (fun input ->
      isolated @@ fun () ->
      let plain = encode input in
      Obs.set_metrics true;
      Obs.set_tracing true;
      let observed = encode input in
      String.equal plain observed)

(* Multi-domain hammer: worker domains register fresh metrics and
   observe histograms while other domains snapshot and render the
   OpenMetrics exposition. Catches two regressions at once: any
   unguarded registry access (crash/corruption under parallel
   registration) and the histogram export race where a scrape paired a
   bucket table with a count from a different moment — every parsed
   render must satisfy `x_bucket{le="+Inf"} = x_count` per family. *)
let test_multidomain_registration_during_snapshot () =
  isolated @@ fun () ->
  let module Openmetrics = Ccomp_obs.Openmetrics in
  let rounds = 120 in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let writers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to rounds - 1 do
              let c = Obs.Counter.make (Printf.sprintf "hammer.w%d.c%d" w i) in
              Obs.Counter.incr c;
              let h = Obs.Histogram.make (Printf.sprintf "hammer.w%d.h%d" w (i mod 7)) in
              for k = 1 to 20 do
                Obs.Histogram.observe h (float_of_int k)
              done
            done))
  in
  let readers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let snap = Obs.snapshot () in
              List.iter
                (fun (hs : Obs.histogram_stats) ->
                  if hs.Obs.hs_count < 0 then Atomic.incr failures)
                snap.Obs.histograms;
              match Openmetrics.parse (Openmetrics.render ()) with
              | Error _ -> Atomic.incr failures
              | Ok samples ->
                (* per histogram family: +Inf bucket must equal _count *)
                let counts = Hashtbl.create 16 and infs = Hashtbl.create 16 in
                List.iter
                  (fun (s : Openmetrics.sample) ->
                    let n = s.Openmetrics.om_name in
                    let has_suffix suf =
                      let ln = String.length n and ls = String.length suf in
                      ln > ls && String.sub n (ln - ls) ls = suf
                    in
                    if has_suffix "_count" then
                      Hashtbl.replace counts
                        (String.sub n 0 (String.length n - 6))
                        s.Openmetrics.om_value
                    else if
                      has_suffix "_bucket"
                      && List.assoc_opt "le" s.Openmetrics.om_labels = Some "+Inf"
                    then
                      Hashtbl.replace infs
                        (String.sub n 0 (String.length n - 7))
                        s.Openmetrics.om_value)
                  samples;
                Hashtbl.iter
                  (fun fam inf ->
                    match Hashtbl.find_opt counts fam with
                    | Some c when c <> inf -> Atomic.incr failures
                    | Some _ -> ()
                    | None -> Atomic.incr failures)
                  infs
            done))
  in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  Alcotest.(check int) "no torn snapshot or render under parallel registration" 0
    (Atomic.get failures);
  (* all registrations made it: every writer-registered counter exists *)
  let snap = Obs.snapshot () in
  let registered = List.length snap.Obs.counters in
  Alcotest.(check bool)
    (Printf.sprintf "all %d hammered counters registered (got %d)" (2 * rounds) registered)
    true
    (registered >= 2 * rounds)

let word_string =
  let g =
    QCheck.Gen.(
      int_range 1 48 >>= fun words ->
      map Bytes.unsafe_to_string (bytes_size (return (4 * words))))
  in
  QCheck.make ~print:(Printf.sprintf "%S") g

let samc_identity =
  obs_identity_test "samc compress identical under obs" word_string (fun s ->
      let cfg = Samc.byte_config ~block_size:16 () in
      let z = Samc.compress cfg s in
      String.concat "" (Array.to_list z.Samc.blocks) ^ Samc.decompress z)

let huffman_identity =
  obs_identity_test "byte-huffman serialize identical under obs"
    QCheck.(string_of_size Gen.(int_range 1 512))
    (fun s -> Byte_huffman.serialize (Byte_huffman.compress ~block_size:16 s))

let suite =
  [
    Alcotest.test_case "counter monotonic + rejects negative" `Quick test_counter_monotonic;
    Alcotest.test_case "counter registry is get-or-create" `Quick test_counter_shared;
    Alcotest.test_case "histogram percentiles within bucket error" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "snapshot JSON round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "reset clears values" `Quick test_reset_clears;
    Alcotest.test_case "timed records a trace slice" `Quick test_span_records;
    Alcotest.test_case "parallel increments lose nothing" `Quick test_parallel_increments;
    Alcotest.test_case "registration hammered during snapshot/render" `Quick
      test_multidomain_registration_during_snapshot;
    QCheck_alcotest.to_alcotest samc_identity;
    QCheck_alcotest.to_alcotest huffman_identity;
  ]
