(* OpenMetrics exposition conformance: name/label sanitisation,
   [_total] suffixing, cumulative-bucket monotonicity, and a parse-back
   round-trip of a live rendering. *)

module Obs = Ccomp_obs.Obs
module Om = Ccomp_obs.Openmetrics

let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      Obs.set_metrics true;
      f ())

let test_sanitize_names () =
  Alcotest.(check string) "dots to underscores" "samc_decode_us"
    (Om.sanitize_metric_name "samc.decode_us");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Om.sanitize_metric_name "9lives");
  Alcotest.(check string) "empty becomes underscore" "_" (Om.sanitize_metric_name "");
  Alcotest.(check string) "colons survive in metric names" "ns:metric"
    (Om.sanitize_metric_name "ns:metric");
  Alcotest.(check string) "colons invalid in label names" "ns_metric"
    (Om.sanitize_label_name "ns:metric");
  Alcotest.(check string) "unicode squashed" "caf___hits"
    (Om.sanitize_metric_name "caf\xc3\xa9.hits")

let test_escape_label_value () =
  Alcotest.(check string) "backslash, quote, newline" "a\\\\b\\\"c\\nd"
    (Om.escape_label_value "a\\b\"c\nd");
  Alcotest.(check string) "plain value untouched" "mips" (Om.escape_label_value "mips")

let test_counter_name () =
  Alcotest.(check string) "gains _total" "par_tasks_total" (Om.counter_name "par.tasks");
  Alcotest.(check string) "exactly one _total" "par_tasks_total"
    (Om.counter_name "par.tasks_total");
  Alcotest.(check string) "sanitised then suffixed" "a_b_total" (Om.counter_name "a.b")

let lines_of s = String.split_on_char '\n' s

let has_line text line = List.mem line (lines_of text)

let test_render_families () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "om.test.jobs") 5;
  Obs.Gauge.set (Obs.Gauge.make "om.test.depth") 2.5;
  let h = Obs.Histogram.make "om.test.us" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 2.0; 4.0; 800.0 ];
  let text = Om.render () in
  Alcotest.(check bool) "TYPE counter" true
    (has_line text "# TYPE om_test_jobs counter");
  Alcotest.(check bool) "counter sample suffixed" true
    (has_line text "om_test_jobs_total 5");
  Alcotest.(check bool) "TYPE gauge" true (has_line text "# TYPE om_test_depth gauge");
  Alcotest.(check bool) "gauge sample" true (has_line text "om_test_depth 2.5");
  Alcotest.(check bool) "TYPE histogram" true
    (has_line text "# TYPE om_test_us histogram");
  Alcotest.(check bool) "histogram count" true (has_line text "om_test_us_count 4");
  Alcotest.(check bool) "histogram sum" true (has_line text "om_test_us_sum 807");
  Alcotest.(check bool) "ends with EOF terminator" true
    (let n = String.length text in
     n >= 6 && String.sub text (n - 6) 6 = "# EOF\n")

let test_bucket_monotonicity () =
  isolated @@ fun () ->
  let h = Obs.Histogram.make "om.mono.us" in
  for i = 1 to 500 do
    Obs.Histogram.observe h (float_of_int (i * 7))
  done;
  let text = Om.render () in
  let samples =
    match Om.parse text with
    | Ok s -> s
    | Error e -> Alcotest.failf "self-render must parse: %s" e
  in
  let buckets =
    List.filter (fun s -> s.Om.om_name = "om_mono_us_bucket") samples
    |> List.map (fun s ->
           match List.assoc_opt "le" s.Om.om_labels with
           | Some le -> (le, s.Om.om_value)
           | None -> Alcotest.fail "bucket without le label")
  in
  Alcotest.(check bool) "several buckets" true (List.length buckets >= 2);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "cumulative counts never decrease" true (a <= b);
      monotone rest
    | _ -> ()
  in
  monotone buckets;
  let le_inf, v_inf = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check string) "last bucket is +Inf" "+Inf" le_inf;
  let count =
    List.find (fun s -> s.Om.om_name = "om_mono_us_count") samples
  in
  Alcotest.(check (float 0.0)) "+Inf bucket equals _count" count.Om.om_value v_inf

let test_parse_roundtrip () =
  isolated @@ fun () ->
  Obs.Counter.add (Obs.Counter.make "om.rt.jobs") 42;
  Obs.Gauge.set (Obs.Gauge.make "om.rt.gauge") (-1.5);
  let h = Obs.Histogram.make "om.rt.us" in
  List.iter (Obs.Histogram.observe h) [ 3.0; 30.0 ];
  let text = Om.render () in
  let samples =
    match Om.parse text with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let value name =
    match List.find_opt (fun s -> s.Om.om_name = name && s.Om.om_labels = []) samples with
    | Some s -> s.Om.om_value
    | None -> Alcotest.failf "sample %s missing" name
  in
  Alcotest.(check (float 0.0)) "counter value survives" 42.0 (value "om_rt_jobs_total");
  Alcotest.(check (float 0.0)) "gauge value survives" (-1.5) (value "om_rt_gauge");
  Alcotest.(check (float 0.0)) "hist count survives" 2.0 (value "om_rt_us_count");
  Alcotest.(check (float 0.0)) "hist sum survives" 33.0 (value "om_rt_us_sum");
  (* the full-registry render also carries every linked library's
     metrics, still at zero in this fixture — the schema is stable *)
  List.iter
    (fun family ->
      Alcotest.(check bool)
        (Printf.sprintf "%s present in schema" family)
        true
        (List.exists
           (fun s ->
             String.length s.Om.om_name >= String.length family
             && String.sub s.Om.om_name 0 (String.length family) = family)
           samples))
    [ "samc_"; "sadc_"; "memsys_"; "par_" ]

(* ISSUE-6 overload metrics: the serve counters already carry a
   _total suffix in their registry names, so exposition must not
   double it, and the per-worker queue gauges must render as gauges. *)
let test_serve_overload_metrics () =
  isolated @@ fun () ->
  (* the ccomp_serve library is linked, so its registry entries exist;
     nudge them so the samples are visibly non-default *)
  Obs.Counter.incr (Obs.Counter.make "serve.shed_total");
  Obs.Counter.incr (Obs.Counter.make "serve.deadline_expired_total");
  Obs.Counter.incr (Obs.Counter.make "serve.worker_restarts_total");
  Obs.Gauge.set (Obs.Gauge.make "serve.queue.depth.0") 3.0;
  let text = Om.render () in
  let samples =
    match Om.parse text with
    | Ok s -> s
    | Error e -> Alcotest.failf "render with serve metrics must parse: %s" e
  in
  let value name =
    match List.find_opt (fun s -> s.Om.om_name = name) samples with
    | Some s -> s.Om.om_value
    | None -> Alcotest.failf "sample %s missing" name
  in
  Alcotest.(check (float 0.0)) "shed counter, single _total" 1.0 (value "serve_shed_total");
  Alcotest.(check (float 0.0)) "deadline counter, single _total" 1.0
    (value "serve_deadline_expired_total");
  Alcotest.(check (float 0.0)) "worker-restart counter, single _total" 1.0
    (value "serve_worker_restarts_total");
  Alcotest.(check (float 0.0)) "queue depth gauge" 3.0 (value "serve_queue_depth_0");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " must not exist") false
        (List.exists (fun s -> s.Om.om_name = bad) samples))
    [ "serve_shed_total_total"; "serve_deadline_expired_total_total";
      "serve_worker_restarts_total_total" ];
  List.iter
    (fun (fam, kind) ->
      Alcotest.(check bool)
        (Printf.sprintf "# TYPE %s %s" fam kind)
        true
        (has_line text (Printf.sprintf "# TYPE %s %s" fam kind)))
    [
      ("serve_shed", "counter");
      ("serve_deadline_expired", "counter");
      ("serve_worker_restarts", "counter");
      ("serve_queue_depth_0", "gauge");
      ("serve_inflight", "gauge");
    ]

(* ISSUE-8 info metrics: build/config facts as labels on a constant-1
   sample, leading the exposition. The ccomp_serve library is linked,
   so its own [serve] info metric must be present too. *)
let test_info_metrics () =
  isolated @@ fun () ->
  Om.set_info "om.info.build" [ ("version", "1.2.3"); ("bad label", "x\"y") ];
  let text = Om.render () in
  Alcotest.(check bool) "TYPE info" true (has_line text "# TYPE om_info_build info");
  let samples =
    match Om.parse text with
    | Ok s -> s
    | Error e -> Alcotest.failf "render with info metrics must parse: %s" e
  in
  (match List.find_opt (fun s -> s.Om.om_name = "om_info_build_info") samples with
  | None -> Alcotest.fail "om_info_build_info sample missing"
  | Some s ->
    Alcotest.(check (float 0.0)) "constant 1" 1.0 s.Om.om_value;
    Alcotest.(check (option string)) "version label survives" (Some "1.2.3")
      (List.assoc_opt "version" s.Om.om_labels);
    Alcotest.(check (option string)) "label name sanitised" (Some "x\"y")
      (List.assoc_opt "bad_label" s.Om.om_labels));
  (* the serve library registered its own info metric at load time *)
  Alcotest.(check bool) "TYPE serve info" true (has_line text "# TYPE serve info");
  (match List.find_opt (fun s -> s.Om.om_name = "serve_info") samples with
  | None -> Alcotest.fail "serve_info sample missing"
  | Some s ->
    Alcotest.(check bool) "serve info carries a version label" true
      (List.assoc_opt "version" s.Om.om_labels <> None));
  (* info families lead the exposition, before the numeric registry *)
  match
    List.find_opt
      (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
      (lines_of text)
  with
  | Some first_type ->
    let n = String.length first_type in
    Alcotest.(check string) "first family is an info family" "info"
      (String.sub first_type (n - 4) 4)
  | None -> Alcotest.fail "no TYPE line in exposition"

let test_info_replace () =
  isolated @@ fun () ->
  Om.set_info "om.info.replace" [ ("a", "1") ];
  Om.set_info "om.info.replace" [ ("b", "2") ];
  match List.assoc_opt "om.info.replace" (Om.info_metrics ()) with
  | Some labels -> Alcotest.(check bool) "last set_info wins" true (labels = [ ("b", "2") ])
  | None -> Alcotest.fail "replaced info metric missing"

let test_parse_rejects () =
  (match Om.parse "foo 1\n" with
  | Ok _ -> Alcotest.fail "missing # EOF must be an error"
  | Error _ -> ());
  (match Om.parse "# EOF\nfoo 1\n" with
  | Ok _ -> Alcotest.fail "samples after # EOF must be an error"
  | Error _ -> ());
  match Om.parse "foo bar baz\n# EOF\n" with
  | Ok _ -> Alcotest.fail "malformed sample line must be an error"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "metric/label name sanitisation" `Quick test_sanitize_names;
    Alcotest.test_case "label value escaping" `Quick test_escape_label_value;
    Alcotest.test_case "_total suffixing" `Quick test_counter_name;
    Alcotest.test_case "rendered families and samples" `Quick test_render_families;
    Alcotest.test_case "bucket monotonicity ending at +Inf" `Quick test_bucket_monotonicity;
    Alcotest.test_case "parse-back round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "serve overload metrics conform" `Quick test_serve_overload_metrics;
    Alcotest.test_case "info metrics conform and lead" `Quick test_info_metrics;
    Alcotest.test_case "info metric replace semantics" `Quick test_info_replace;
    Alcotest.test_case "parser rejects malformed input" `Quick test_parse_rejects;
  ]
