(* Slow-request ring: threshold boundary, forced outcomes, overflow
   keeps the newest records, JSON round trip, GC correlation. Each test
   restores the default ring configuration. *)

module Obs = Ccomp_obs.Obs
module Runtime = Ccomp_obs.Runtime
module Slow = Ccomp_serve.Slow

let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Slow.configure ~capacity:64 ~threshold_us:100_000.0 ();
      Slow.clear ();
      Obs.set_metrics false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      Slow.configure ~capacity:64 ~threshold_us:100_000.0 ();
      Slow.clear ();
      f ())

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let mk ?(id = 1L) ?(kind = "compress") ?(outcome = "ok") ?(total = 150_000.0)
    ?(queue = 10_000.0) ?(read = 5_000.0) ?(work = 130_000.0) ?(write = 5_000.0) ?(depth = 3)
    ?(gc_work = Runtime.delta_zero) () =
  {
    Slow.sr_ts_us = 1.7e15;
    sr_id = id;
    sr_kind = kind;
    sr_outcome = outcome;
    sr_total_us = total;
    sr_queue_us = queue;
    sr_read_us = read;
    sr_work_us = work;
    sr_write_us = write;
    sr_queue_depth = depth;
    sr_gc_read = Runtime.delta_zero;
    sr_gc_work = gc_work;
    sr_gc_write = Runtime.delta_zero;
  }

let test_threshold_boundary () =
  isolated (fun () ->
      Slow.configure ~threshold_us:100_000.0 ();
      Alcotest.(check bool) "just below threshold: not sampled" false
        (Slow.maybe_sample (mk ~total:99_999.9 ()));
      Alcotest.(check int) "ring still empty" 0 (List.length (Slow.tail 10));
      Alcotest.(check bool) "exactly at threshold: sampled" true
        (Slow.maybe_sample (mk ~total:100_000.0 ()));
      Alcotest.(check bool) "above threshold: sampled" true
        (Slow.maybe_sample (mk ~total:100_000.1 ()));
      Alcotest.(check int) "two records retained" 2 (List.length (Slow.tail 10));
      (* a zero threshold samples everything *)
      Slow.configure ~threshold_us:0.0 ();
      Alcotest.(check bool) "zero threshold samples a 1us request" true
        (Slow.maybe_sample (mk ~total:1.0 ())))

let test_forced_outcomes () =
  isolated (fun () ->
      List.iter
        (fun outcome ->
          Alcotest.(check bool)
            (outcome ^ " sampled however fast the refusal")
            true
            (Slow.maybe_sample (mk ~outcome ~total:50.0 ())))
        [ "overloaded"; "deadline_expired"; "shed" ];
      Alcotest.(check bool) "plain failure below threshold: not sampled" false
        (Slow.maybe_sample (mk ~outcome:"failed" ~total:50.0 ()));
      Alcotest.(check bool) "ok below threshold: not sampled" false
        (Slow.maybe_sample (mk ~outcome:"ok" ~total:50.0 ()));
      Alcotest.(check int) "only the forced three retained" 3 (List.length (Slow.tail 10));
      let snap = Obs.snapshot () in
      let v name = match List.assoc_opt name snap.Obs.counters with Some n -> n | None -> 0 in
      Alcotest.(check int) "sampled_total counts them" 3 (v "serve.slow.sampled_total");
      Alcotest.(check int) "forced_total counts them" 3 (v "serve.slow.forced_total"))

let test_overflow_keeps_newest () =
  isolated (fun () ->
      Slow.configure ~capacity:4 ();
      for i = 1 to 10 do
        Slow.note (mk ~id:(Int64.of_int i) ())
      done;
      let ids l = List.map (fun (r : Slow.record) -> r.Slow.sr_id) l in
      Alcotest.(check (list int64)) "overflow keeps the newest, oldest first"
        [ 7L; 8L; 9L; 10L ] (ids (Slow.tail 10));
      Alcotest.(check (list int64)) "tail n trims from the old end" [ 9L; 10L ]
        (ids (Slow.tail 2));
      Alcotest.(check (list int64)) "tail 0 is empty" [] (ids (Slow.tail 0));
      (* resizing drops retained records rather than splicing *)
      Slow.configure ~capacity:2 ();
      Alcotest.(check int) "resize clears the ring" 0 (List.length (Slow.tail 10)))

let test_json_round_trip () =
  isolated (fun () ->
      let gc_work =
        {
          Runtime.d_minor_collections = 3;
          d_major_collections = 1;
          d_compactions = 0;
          d_minor_words = 200_000.0;
          d_promoted_words = 10_000.0;
          d_major_words = 4_096.0;
        }
      in
      let r = mk ~id:42L ~kind:"decompress" ~outcome:"deadline_expired" ~depth:7 ~gc_work () in
      let line = Slow.to_json_line r in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Slow.of_json_line line with
      | Error e -> Alcotest.failf "round trip failed: %s" e
      | Ok r2 ->
        Alcotest.(check int64) "id survives" r.Slow.sr_id r2.Slow.sr_id;
        Alcotest.(check string) "kind survives" r.Slow.sr_kind r2.Slow.sr_kind;
        Alcotest.(check string) "outcome survives" r.Slow.sr_outcome r2.Slow.sr_outcome;
        Alcotest.(check (float 0.01)) "total survives" r.Slow.sr_total_us r2.Slow.sr_total_us;
        Alcotest.(check (float 0.01)) "work stage survives" r.Slow.sr_work_us r2.Slow.sr_work_us;
        Alcotest.(check int) "queue depth survives" r.Slow.sr_queue_depth r2.Slow.sr_queue_depth;
        Alcotest.(check int) "work-stage minor collections survive" 3
          r2.Slow.sr_gc_work.Runtime.d_minor_collections;
        Alcotest.(check int) "work-stage major collections survive" 1
          r2.Slow.sr_gc_work.Runtime.d_major_collections;
        (* the per-stage allocation total round-trips (folded into
           d_minor_words; the minor/major split is not preserved) *)
        Alcotest.(check (float 1e-6)) "work-stage allocation survives"
          (Runtime.alloc_mb r.Slow.sr_gc_work)
          (Runtime.alloc_mb r2.Slow.sr_gc_work);
        Alcotest.(check bool) "round-tripped record still overlapped a major" true
          (Slow.overlapped_major r2))

let test_json_rejects_garbage () =
  isolated (fun () ->
      List.iter
        (fun line ->
          match Slow.of_json_line line with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted garbage: %s" line)
        [ ""; "not json"; "{}"; {|{"ts_us": "string"}|}; {|[1,2,3]|} ])

let test_correlation () =
  isolated (fun () ->
      Alcotest.(check bool) "no samples, no line" true (Slow.correlation_line [] = None);
      let hit =
        mk ~gc_work:{ Runtime.delta_zero with Runtime.d_major_collections = 1 } ()
      in
      let miss = mk () in
      Alcotest.(check bool) "major in a stage = overlap" true (Slow.overlapped_major hit);
      Alcotest.(check bool) "no major = no overlap" false (Slow.overlapped_major miss);
      let n, h = Slow.correlation [ hit; miss ] in
      Alcotest.(check (pair int int)) "correlation counts" (2, 1) (n, h);
      match Slow.correlation_line [ hit; miss ] with
      | None -> Alcotest.fail "expected a correlation line"
      | Some line ->
        Alcotest.(check bool) "line names the share" true
          (contains ~needle:"50" line && contains ~needle:"2 sampled" line))

let test_render_table () =
  isolated (fun () ->
      let rows =
        [
          mk ~kind:"compress" ~outcome:"ok" ();
          mk ~kind:"shed" ~outcome:"shed" ~total:0.0
            ~queue:0.0 ~read:0.0 ~work:0.0 ~write:0.0 ~depth:12 ();
        ]
      in
      let table = Slow.render_table rows in
      Alcotest.(check bool) "table names the kinds" true
        (contains ~needle:"compress" table && contains ~needle:"shed" table);
      Alcotest.(check bool) "table carries the correlation line" true
        (contains ~needle:"overlapped a major collection" table);
      Alcotest.(check bool) "empty table renders without crashing" true
        (String.length (Slow.render_table []) >= 0))

let suite =
  [
    Alcotest.test_case "threshold boundary is inclusive" `Quick test_threshold_boundary;
    Alcotest.test_case "shed/overloaded/expired always sampled" `Quick test_forced_outcomes;
    Alcotest.test_case "overflow keeps the newest records" `Quick test_overflow_keeps_newest;
    Alcotest.test_case "JSON round trip preserves the record" `Quick test_json_round_trip;
    Alcotest.test_case "of_json_line rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "major-GC correlation" `Quick test_correlation;
    Alcotest.test_case "render_table" `Quick test_render_table;
  ]
