module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

let test_single_bits () =
  let w = Bit_writer.create () in
  List.iter (Bit_writer.put_bit w) [ 1; 0; 1; 1; 0; 0; 1; 0 ];
  Alcotest.(check string) "msb-first packing" "\xb2" (Bit_writer.contents w)

let test_partial_byte_padding () =
  let w = Bit_writer.create () in
  List.iter (Bit_writer.put_bit w) [ 1; 1; 1 ];
  Alcotest.(check string) "zero padded" "\xe0" (Bit_writer.contents w);
  Alcotest.(check int) "bit length counts bits" 3 (Bit_writer.bit_length w);
  Alcotest.(check int) "byte length rounds up" 1 (Bit_writer.byte_length w)

let test_put_bits_width () =
  let w = Bit_writer.create () in
  Bit_writer.put_bits w ~value:0b101 ~width:3;
  Bit_writer.put_bits w ~value:0b11111 ~width:5;
  Alcotest.(check string) "two fields packed" "\xbf" (Bit_writer.contents w)

let test_put_byte_aligned_and_not () =
  let w = Bit_writer.create () in
  Bit_writer.put_byte w 0xAB;
  Bit_writer.put_bit w 1;
  Bit_writer.put_byte w 0xCD;
  let r = Bit_reader.create (Bit_writer.contents w) in
  Alcotest.(check int) "byte back" 0xAB (Bit_reader.get_byte r);
  Alcotest.(check int) "bit back" 1 (Bit_reader.get_bit r);
  Alcotest.(check int) "unaligned byte back" 0xCD (Bit_reader.get_byte r)

let test_align () =
  let w = Bit_writer.create () in
  Bit_writer.put_bit w 1;
  Bit_writer.align_byte w;
  Alcotest.(check int) "aligned to 8" 8 (Bit_writer.bit_length w);
  Bit_writer.align_byte w;
  Alcotest.(check int) "idempotent" 8 (Bit_writer.bit_length w);
  let r = Bit_reader.create (Bit_writer.contents w) in
  ignore (Bit_reader.get_bit r);
  Bit_reader.align_byte r;
  Alcotest.(check int) "reader aligned" 8 (Bit_reader.pos r)

let test_reader_past_end () =
  let r = Bit_reader.create "\xff" in
  Alcotest.(check int) "in-bounds byte" 0xff (Bit_reader.get_byte r);
  Alcotest.(check int) "no overrun yet" 0 (Bit_reader.overrun r);
  Alcotest.(check int) "past end reads zero" 0 (Bit_reader.get_byte r);
  Alcotest.(check int) "overrun counted" 8 (Bit_reader.overrun r);
  Alcotest.(check int) "remaining zero" 0 (Bit_reader.remaining_bits r)

let test_start_bit () =
  let r = Bit_reader.create ~start_bit:4 "\x0f" in
  Alcotest.(check int) "reads low nibble" 0xf (Bit_reader.get_bits r 4)

let test_reset () =
  let w = Bit_writer.create () in
  Bit_writer.put_byte w 1;
  Bit_writer.reset w;
  Alcotest.(check int) "empty after reset" 0 (Bit_writer.bit_length w);
  Bit_writer.put_byte w 2;
  Alcotest.(check string) "reusable" "\x02" (Bit_writer.contents w)

let prop_roundtrip =
  QCheck.Test.make ~name:"bit fields round-trip" ~count:300
    QCheck.(small_list (pair (int_bound 30) (int_bound 0x3fffffff)))
    (fun fields ->
      let fields = List.map (fun (w, v) -> (w, v land ((1 lsl w) - 1))) fields in
      let w = Bit_writer.create () in
      List.iter (fun (width, value) -> Bit_writer.put_bits w ~value ~width) fields;
      let r = Bit_reader.create (Bit_writer.contents w) in
      List.for_all (fun (width, value) -> Bit_reader.get_bits r width = value) fields)

(* --- edge-width behaviour against a naive bit-at-a-time reference ------ *)

(* The reference reads MSB-first straight from the string, one bit per
   step, zero past the end — the semantics the word-batched reader must
   reproduce at every width including the 62/63-bit accumulator edge. *)
let ref_bit data i =
  if i < 8 * String.length data then (Char.code data.[i / 8] lsr (7 - (i land 7))) land 1 else 0

let ref_bits data pos width =
  let v = ref 0 in
  for k = 0 to width - 1 do
    v := (!v lsl 1) lor ref_bit data (pos + k)
  done;
  !v

let test_exhaustive_edge_widths () =
  let data = String.init 17 (fun i -> Char.chr ((i * 83) land 0xff)) in
  (* every width 0..63, from every start offset 0..15, for data that
     ends mid-read — covers full-accumulator, split (>32-bit) and
     zero-extended end-of-data extractions *)
  for start = 0 to 15 do
    for width = 0 to 63 do
      let r = Bit_reader.create ~start_bit:start data in
      let got = Bit_reader.get_bits r width in
      let want = ref_bits data start width in
      if got <> want then
        Alcotest.failf "get_bits start=%d width=%d: got %d want %d" start width got want;
      Alcotest.(check int) "pos advances by width" (start + width) (Bit_reader.pos r);
      if width <= 32 then begin
        let r2 = Bit_reader.create ~start_bit:start data in
        let peeked = Bit_reader.peek_bits r2 width in
        if peeked <> want then
          Alcotest.failf "peek_bits start=%d width=%d: got %d want %d" start width peeked want;
        Alcotest.(check int) "peek consumes nothing" start (Bit_reader.pos r2)
      end;
      (* skip then read one bit must land where the reference says *)
      let r3 = Bit_reader.create ~start_bit:start data in
      Bit_reader.skip_bits r3 width;
      Alcotest.(check int)
        (Printf.sprintf "bit after skip %d@%d" width start)
        (ref_bit data (start + width))
        (Bit_reader.get_bit r3)
    done
  done

let test_width_63_roundtrip () =
  (* a 63-bit pattern with the top bit set occupies the sign position;
     the pattern must still round-trip exactly *)
  let patterns = [ -1; min_int; max_int; 0x5555_5555_5555_5555 land max_int lor min_int; 1; 0 ] in
  let w = Bit_writer.create () in
  List.iter (fun v -> Bit_writer.put_bits w ~value:v ~width:63) patterns;
  let r = Bit_reader.create (Bit_writer.contents w) in
  List.iteri
    (fun i v ->
      let got = Bit_reader.get_bits r 63 in
      if got <> v then Alcotest.failf "63-bit pattern %d: got %x want %x" i got v)
    patterns

let test_width_out_of_range_rejected () =
  let r = Bit_reader.create "\xff\xff" in
  let inv name f = Alcotest.check_raises name (Invalid_argument "") (fun () ->
    try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  inv "get_bits 64" (fun () -> ignore (Bit_reader.get_bits r 64));
  inv "get_bits -1" (fun () -> ignore (Bit_reader.get_bits r (-1)));
  inv "peek_bits 33" (fun () -> ignore (Bit_reader.peek_bits r 33));
  inv "peek_bits -1" (fun () -> ignore (Bit_reader.peek_bits r (-1)));
  inv "skip_bits 64" (fun () -> Bit_reader.skip_bits r 64);
  inv "create start_bit -1" (fun () -> ignore (Bit_reader.create ~start_bit:(-1) "x"));
  let w = Bit_writer.create () in
  inv "put_bits 64" (fun () -> Bit_writer.put_bits w ~value:0 ~width:64);
  inv "put_bits -1" (fun () -> Bit_writer.put_bits w ~value:0 ~width:(-1));
  inv "put_bit 2" (fun () -> Bit_writer.put_bit w 2);
  inv "put_byte 256" (fun () -> Bit_writer.put_byte w 256);
  (* the reader must still be usable after a rejected call *)
  Alcotest.(check int) "reader state intact" 0xff (Bit_reader.get_byte r)

let prop_mixed_ops_vs_reference =
  (* random interleavings of get/peek/skip at random widths, including
     unaligned starts and reads running past the end of data *)
  QCheck.Test.make ~name:"mixed ops match naive reference" ~count:300
    QCheck.(
      triple (string_of_size Gen.(int_range 0 24)) (int_bound 16)
        (small_list (pair (int_bound 3) (int_bound 63))))
    (fun (data, start, ops) ->
      let r = Bit_reader.create ~start_bit:start data in
      let pos = ref start in
      List.for_all
        (fun (op, width) ->
          match op with
          | 0 ->
            let ok = Bit_reader.get_bits r width = ref_bits data !pos width in
            pos := !pos + width;
            ok
          | 1 when width <= 32 -> Bit_reader.peek_bits r width = ref_bits data !pos width
          | 2 ->
            Bit_reader.skip_bits r width;
            pos := !pos + width;
            Bit_reader.pos r = !pos
          | _ ->
            let ok = Bit_reader.get_bit r = ref_bit data !pos in
            incr pos;
            ok)
        ops)

let prop_bit_length =
  QCheck.Test.make ~name:"bit_length sums widths" ~count:200
    QCheck.(small_list (int_bound 30))
    (fun widths ->
      let w = Bit_writer.create () in
      List.iter (fun width -> Bit_writer.put_bits w ~value:0 ~width) widths;
      Bit_writer.bit_length w = List.fold_left ( + ) 0 widths)

let suite =
  [
    Alcotest.test_case "single bits msb first" `Quick test_single_bits;
    Alcotest.test_case "partial byte padding" `Quick test_partial_byte_padding;
    Alcotest.test_case "put_bits packing" `Quick test_put_bits_width;
    Alcotest.test_case "bytes across alignment" `Quick test_put_byte_aligned_and_not;
    Alcotest.test_case "align_byte" `Quick test_align;
    Alcotest.test_case "reads past end are zero" `Quick test_reader_past_end;
    Alcotest.test_case "start_bit offset" `Quick test_start_bit;
    Alcotest.test_case "writer reset" `Quick test_reset;
    Alcotest.test_case "exhaustive edge widths vs reference" `Quick test_exhaustive_edge_widths;
    Alcotest.test_case "63-bit sign-position round-trip" `Quick test_width_63_roundtrip;
    Alcotest.test_case "out-of-range widths rejected" `Quick test_width_out_of_range_rejected;
    QCheck_alcotest.to_alcotest prop_mixed_ops_vs_reference;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_bit_length;
  ]
