(* Differential verification harness: a clean sweep over every
   equivalence pair on fresh inputs, exact first-difference location,
   shrinker minimality and budget, and the golden corpus tripping on
   single corrupted bytes. The CLI path and the live tripwire are
   exercised end to end by tools/verify_check.sh. *)

module Verify = Ccomp_verify.Verify

let test_clean_sweep () =
  let inputs = Verify.progen_inputs ~profiles:[ "gcc" ] ~scale:0.02 ~seed:11 in
  Alcotest.(check int) "both ISAs generated" 2 (List.length inputs);
  let report = Verify.run ~pairs:Verify.all_pairs inputs in
  Alcotest.(check int) "no divergences on clean inputs" 0 (List.length report.Verify.divergences);
  Alcotest.(check bool) "a real number of checks ran" true (report.Verify.checks > 50)

let test_diff_location () =
  let a = String.make 100 '\x00' in
  (* byte 70 differs in bit 2 (MSB-first): 0x00 vs 0x20 *)
  let b = Bytes.of_string a in
  Bytes.set b 70 '\x20';
  let block, bit = Verify.diff_location ~block_size:32 a (Bytes.to_string b) in
  Alcotest.(check (option int)) "block of the first difference" (Some 2) block;
  Alcotest.(check (option int)) "absolute bit of the first difference" (Some 562) bit;
  Alcotest.(check (pair (option int) (option int)))
    "equal strings have no difference" (None, None)
    (Verify.diff_location ~block_size:32 a a);
  (* a pure length difference points at the first missing byte *)
  let block, bit = Verify.diff_location ~block_size:32 a (String.sub a 0 40) in
  Alcotest.(check (option int)) "length difference: block" (Some 1) block;
  Alcotest.(check (option int)) "length difference: bit" (Some 320) bit

let test_minimize () =
  (* one marker word in a 64-word haystack; the minimal input holding
     the predicate is exactly that word *)
  let marker = "\xde\xad\xbe\xef" in
  let haystack =
    String.concat "" (List.init 64 (fun i -> if i = 20 then marker else "\x00\x00\x00\x00"))
  in
  let contains_marker s =
    let n = String.length marker in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = marker || go (i + 1))
    in
    go 0
  in
  let shrunk = Verify.minimize ~word:4 ~budget:500 ~predicate:contains_marker haystack in
  Alcotest.(check string) "shrunk to exactly the marker word" marker shrunk;
  (* the budget really bounds predicate calls *)
  let calls = ref 0 in
  let pred s = incr calls; contains_marker s in
  let shrunk = Verify.minimize ~word:4 ~budget:7 ~predicate:pred haystack in
  Alcotest.(check bool) "budget respected" true (!calls <= 7);
  Alcotest.(check bool) "result still satisfies the predicate" true (contains_marker shrunk);
  (* byte-granular shrinking (x86 word size) reaches the same minimum *)
  let shrunk = Verify.minimize ~word:1 ~budget:2000 ~predicate:contains_marker haystack in
  Alcotest.(check string) "word=1 shrinks to the marker bytes" marker shrunk

let with_tmpdir f =
  let dir = Filename.temp_file "ccomp_golden" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let flip_byte path pos =
  let ic = open_in_bin path in
  let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x41));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let test_golden_roundtrip () =
  with_tmpdir @@ fun dir ->
  let blessed = Verify.bless_golden ~dir in
  Alcotest.(check bool) "corpus has entries" true (List.length blessed >= 4);
  match Verify.load_golden ~dir with
  | Error e -> Alcotest.failf "manifest does not load back: %s" e
  | Ok entries ->
    Alcotest.(check int) "manifest round-trips every entry" (List.length blessed)
      (List.length entries);
    let checks, divs = Verify.check_golden ~dir entries in
    Alcotest.(check int) "blessed corpus checks clean" 0 (List.length divs);
    Alcotest.(check bool) "corpus checks actually ran" true (checks >= 4 * List.length entries)

let test_golden_tripwire () =
  with_tmpdir @@ fun dir ->
  let _ = Verify.bless_golden ~dir in
  let entries = match Verify.load_golden ~dir with Ok e -> e | Error e -> Alcotest.fail e in
  let first = List.hd entries in
  (* a single flipped artifact byte must surface as a divergence *)
  flip_byte (Filename.concat dir (first.Verify.ge_name ^ ".secf")) 40;
  let _, divs = Verify.check_golden ~dir entries in
  Alcotest.(check bool) "corrupted artifact trips the corpus check" true (divs <> []);
  List.iter
    (fun d -> Alcotest.(check bool) "tagged as a golden finding" true (d.Verify.d_pair = Verify.Golden))
    divs;
  (* restore, then corrupt the input instead: its manifest CRC must trip *)
  let _ = Verify.bless_golden ~dir in
  flip_byte (Filename.concat dir (first.Verify.ge_name ^ ".bin")) 10;
  let _, divs = Verify.check_golden ~dir entries in
  Alcotest.(check bool) "corrupted input trips the corpus check" true (divs <> [])

let suite =
  [
    Alcotest.test_case "all pairs clean on fresh inputs" `Quick test_clean_sweep;
    Alcotest.test_case "first difference located by block and bit" `Quick test_diff_location;
    Alcotest.test_case "shrinker is minimal and budget-bounded" `Quick test_minimize;
    Alcotest.test_case "golden corpus blesses and checks clean" `Quick test_golden_roundtrip;
    Alcotest.test_case "golden corpus trips on corrupted bytes" `Quick test_golden_tripwire;
  ]
