(* Runtime telemetry: per-domain deltas are non-negative, the global
   counters are monotone however many domains sample concurrently, and
   the major-cycle alarm actually fires. Every test restores the
   metrics-off default so suites stay independent. *)

module Obs = Ccomp_obs.Obs
module Runtime = Ccomp_obs.Runtime

let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.reset ())
    (fun () ->
      Obs.reset ();
      f ())

(* Allocate [n] short-lived boxed values so the minor heap sees real
   traffic; opaque_identity keeps flambda-style optimisers honest. The
   closing [Gc.minor ()] matters: OCaml 5 publishes the per-domain
   allocation counters lazily, so without a collection a subsequent
   [Gc.quick_stat] may not see the churn at all. *)
let churn n =
  let acc = ref [] in
  for i = 0 to n - 1 do
    acc := string_of_int i :: !acc
  done;
  ignore (Sys.opaque_identity !acc);
  Gc.minor ()

let nonneg (d : Runtime.delta) =
  d.Runtime.d_minor_collections >= 0
  && d.Runtime.d_major_collections >= 0
  && d.Runtime.d_compactions >= 0
  && d.Runtime.d_minor_words >= 0.0
  && d.Runtime.d_promoted_words >= 0.0
  && d.Runtime.d_major_words >= 0.0

let counter_value snap name =
  match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> 0

let runtime_counters =
  [
    "runtime.gc.minor_collections";
    "runtime.gc.major_collections";
    "runtime.gc.compactions";
    "runtime.gc.minor_words";
    "runtime.gc.promoted_words";
    "runtime.gc.major_words";
    "runtime.gc.major_cycles";
  ]

(* --- guard behaviour ----------------------------------------------------- *)

let test_disabled () =
  isolated (fun () ->
      Alcotest.(check bool) "probe off = None" true (Runtime.probe () = None);
      Runtime.tick ();
      (* must not raise *)
      Alcotest.(check bool) "sample off = zero delta" true (Runtime.sample () = Runtime.delta_zero);
      churn 10_000;
      Alcotest.(check bool) "still zero after churn" true (Runtime.sample () = Runtime.delta_zero);
      let snap = Obs.snapshot () in
      List.iter
        (fun name ->
          Alcotest.(check int) (name ^ " untouched when metrics off") 0 (counter_value snap name))
        runtime_counters)

let test_stage_delta () =
  isolated (fun () ->
      Alcotest.(check bool) "None/None is zero" true
        (Runtime.stage_delta None None = Runtime.delta_zero);
      Obs.set_metrics true;
      let a = Runtime.probe () in
      Alcotest.(check bool) "probe on = Some" true (a <> None);
      churn 50_000;
      let b = Runtime.probe () in
      Alcotest.(check bool) "mixed None sides are zero" true
        (Runtime.stage_delta None b = Runtime.delta_zero
        && Runtime.stage_delta a None = Runtime.delta_zero);
      let d = Runtime.stage_delta a b in
      Alcotest.(check bool) "forward delta non-negative" true (nonneg d);
      Alcotest.(check bool) "forward delta saw the allocation" true
        (d.Runtime.d_minor_words +. d.Runtime.d_major_words > 0.0);
      Alcotest.(check bool) "alloc_mb positive for a real delta" true (Runtime.alloc_mb d > 0.0);
      (* swapped arguments clamp at zero instead of going negative *)
      let r = Runtime.stage_delta b a in
      Alcotest.(check bool) "reversed delta clamps to zero" true
        (nonneg r && r.Runtime.d_minor_words = 0.0))

(* --- qcheck: delta non-negativity ---------------------------------------- *)

let qcheck_delta_nonneg =
  QCheck.Test.make ~count:40 ~name:"runtime.sample deltas are non-negative"
    QCheck.(int_range 0 20_000)
    (fun n ->
      isolated (fun () ->
          Obs.set_metrics true;
          ignore (Runtime.sample ());
          churn n;
          let d = Runtime.sample () in
          nonneg d
          && Runtime.alloc_mb d >= 0.0
          && (n < 1_000 || d.Runtime.d_minor_words +. d.Runtime.d_major_words > 0.0)))

(* --- qcheck: monotone counters under concurrent domains ------------------ *)

let qcheck_counters_monotone =
  QCheck.Test.make ~count:8
    ~name:"global runtime counters are monotone under concurrent domains"
    QCheck.(pair (int_range 1 3) (int_range 1 4))
    (fun (domains, rounds) ->
      isolated (fun () ->
          Obs.set_metrics true;
          let workers =
            List.init domains (fun _ ->
                Domain.spawn (fun () ->
                    List.init rounds (fun _ ->
                        churn 2_000;
                        Runtime.sample ())))
          in
          (* poll the shared registry while the workers hammer it: every
             successive snapshot must be componentwise >= the previous *)
          let monotone = ref true in
          let prev = ref (Obs.snapshot ()) in
          for _ = 1 to 5 do
            churn 500;
            ignore (Runtime.sample ());
            let cur = Obs.snapshot () in
            List.iter
              (fun name ->
                if counter_value cur name < counter_value !prev name then monotone := false)
              runtime_counters;
            prev := cur
          done;
          let per_domain = List.concat_map Domain.join workers in
          let final = Obs.snapshot () in
          List.iter
            (fun name ->
              if counter_value final name < counter_value !prev name then monotone := false)
            runtime_counters;
          !monotone
          && List.for_all nonneg per_domain
          (* every domain allocated, so the global word counter must have
             absorbed at least one positive contribution *)
          && counter_value final "runtime.gc.minor_words" > 0))

(* --- alarm: major cycles and pause estimates ----------------------------- *)

let test_alarm_counts_major_cycles () =
  isolated (fun () ->
      Obs.set_metrics true;
      Runtime.install_alarm ();
      Runtime.install_alarm ();
      (* idempotent *)
      let before = counter_value (Obs.snapshot ()) "runtime.gc.major_cycles" in
      Runtime.tick ();
      Gc.full_major ();
      Gc.full_major ();
      let snap = Obs.snapshot () in
      let after = counter_value snap "runtime.gc.major_cycles" in
      Alcotest.(check bool)
        (Printf.sprintf "major cycles advanced (%d -> %d)" before after)
        true (after > before);
      (* the tick was stamped right before the forced major, so the
         pause estimate is fresh and must have been observed *)
      let pauses =
        List.find_opt
          (fun (h : Obs.histogram_stats) -> h.Obs.hs_name = Runtime.major_pause_histogram_name)
          snap.Obs.histograms
      in
      match pauses with
      | Some h ->
        Alcotest.(check bool) "pause estimates are non-negative" true (h.Obs.hs_min >= 0.0)
      | None -> Alcotest.fail "no runtime.gc.major_pause_us observations after a forced major")

let test_sample_refreshes_gauges () =
  isolated (fun () ->
      Obs.set_metrics true;
      churn 20_000;
      ignore (Runtime.sample ());
      let snap = Obs.snapshot () in
      let gauge name = List.assoc_opt name snap.Obs.gauges in
      (match gauge "runtime.gc.heap_words" with
      | Some v -> Alcotest.(check bool) "heap_words gauge positive" true (v > 0.0)
      | None -> Alcotest.fail "runtime.gc.heap_words gauge missing after sample");
      (* runtime.domains is bumped once per domain for the life of the
         process, so after an Obs.reset an already-counted domain leaves
         it untouched — present means >= 1, absent is fine *)
      (match gauge "runtime.domains" with
      | Some v -> Alcotest.(check bool) "domains gauge >= 1" true (v >= 1.0)
      | None -> ());
      (match gauge "runtime.alloc_rate_mbps" with
      | Some v -> Alcotest.(check bool) "alloc rate non-negative" true (v >= 0.0)
      | None -> Alcotest.fail "runtime.alloc_rate_mbps gauge missing after sample");
      match gauge "runtime.gc.space_overhead" with
      | Some v -> Alcotest.(check bool) "space_overhead mirrors Gc params" true (v > 0.0)
      | None -> Alcotest.fail "runtime.gc.space_overhead gauge missing after sample")

let suite =
  [
    Alcotest.test_case "everything is a no-op with metrics off" `Quick test_disabled;
    Alcotest.test_case "stage deltas: zero on None, clamped on swap" `Quick test_stage_delta;
    QCheck_alcotest.to_alcotest qcheck_delta_nonneg;
    QCheck_alcotest.to_alcotest qcheck_counters_monotone;
    Alcotest.test_case "gc alarm counts major cycles + pause estimates" `Quick
      test_alarm_counts_major_cycles;
    Alcotest.test_case "sample refreshes heap/domain gauges" `Quick test_sample_refreshes_gauges;
  ]
