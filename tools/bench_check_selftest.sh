#!/bin/sh
# Self-test for bench_check.sh's verdict logic: the gate is only a gate
# if it exits nonzero on every unusable input, so each scenario here
# pins an exit status against synthetic fixtures (no dune, no real
# benchmark run — safe for `dune runtest`).
#
# usage: bench_check_selftest.sh [BENCH_CHECK]
set -eu

check=${1:-$(dirname "$0")/bench_check.sh}
[ -r "$check" ] || { echo "bench_check_selftest: cannot read $check" >&2; exit 2; }

dir=$(mktemp -d /tmp/bench_selftest.XXXXXX)
trap 'rm -rf "$dir"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

keys='
samc-mips.compress_serial_mbps
samc-mips.compress_parallel_mbps
samc-mips.decompress_serial_mbps
samc-mips.decompress_parallel_mbps
samc-mips.decompress_ref_mbps
sadc-mips.compress_serial_mbps
sadc-mips.compress_parallel_mbps
sadc-mips.decompress_serial_mbps
sadc-mips.decompress_parallel_mbps
byte-huffman.compress_serial_mbps
byte-huffman.compress_parallel_mbps
byte-huffman.decompress_mbps
byte-huffman.decompress_parallel_mbps
byte-huffman.decompress_tree_mbps
samc-mips.decompress_jobs1_mbps
samc-mips.decompress_jobs2_mbps
samc-mips.decompress_jobs4_mbps
samc-mips.decompress_jobs8_mbps
sadc-mips.decompress_jobs1_mbps
sadc-mips.decompress_jobs2_mbps
sadc-mips.decompress_jobs4_mbps
sadc-mips.decompress_jobs8_mbps
byte-huffman.decompress_jobs1_mbps
byte-huffman.decompress_jobs2_mbps
byte-huffman.decompress_jobs4_mbps
byte-huffman.decompress_jobs8_mbps
par.tasks
par.jobs
par.queue_depth_count
'

# emit_fixture FILE KEY=VALUE...: a ccomp-bench-v1 file with every
# expected key at 100.0 except the listed overrides.
emit_fixture() {
  file=$1
  shift
  {
    echo '{'
    echo '  "schema": "ccomp-bench-v1",'
    for key in $keys; do
      v=100.0
      for override in "$@"; do
        case $override in "$key="*) v=${override#*=} ;; esac
      done
      echo "  \"$key\": $v,"
    done
    echo '  "end": 0'
    echo '}'
  } > "$file"
}

failures=0

# expect NAME WANT(ok|fail) CMD...: run the gate, compare the verdict.
expect() {
  name=$1 want=$2
  shift 2
  status=0
  "$@" > "$dir/last.log" 2>&1 || status=$?
  case $want in
    ok)   bad=$([ "$status" -eq 0 ] || echo y) ;;
    fail) bad=$([ "$status" -ne 0 ] || echo y) ;;
  esac
  if [ -n "$bad" ]; then
    echo "bench_check_selftest: FAIL [$name]: exit $status, wanted $want" >&2
    sed 's/^/    /' "$dir/last.log" >&2
    failures=$((failures + 1))
  else
    echo "bench_check_selftest: ok [$name] (exit $status)"
  fi
}

emit_fixture "$dir/good.json"
emit_fixture "$dir/base.json"

expect "identical runs pass" ok \
  sh "$check" --compare "$dir/good.json" "$dir/base.json"

expect "validate accepts a complete file" ok \
  sh "$check" --validate "$dir/good.json"

# gated regression: a decompress key 50% under baseline
emit_fixture "$dir/slow.json" "samc-mips.decompress_serial_mbps=50.0"
expect "decompress regression fails" fail \
  sh "$check" --compare "$dir/slow.json" "$dir/base.json"

# ungated: compress may slow down without failing the gate
emit_fixture "$dir/slowc.json" "samc-mips.compress_serial_mbps=50.0"
expect "compress slowdown is ungated" ok \
  sh "$check" --compare "$dir/slowc.json" "$dir/base.json"

# a baseline carrying garbage for a gated key must fail, not pass:
# the gate cannot claim "no regression" against a number it cannot read
emit_fixture "$dir/badbase.json" "sadc-mips.decompress_parallel_mbps=oops"
expect "corrupt baseline value fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir/badbase.json"

emit_fixture "$dir/zerobase.json" "byte-huffman.decompress_mbps=0"
expect "zero baseline value fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir/zerobase.json"

expect "missing baseline fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir/does-not-exist.json"

: > "$dir/empty.json"
expect "empty baseline fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir/empty.json"

echo '{"schema": "some-other-schema"}' > "$dir/alien.json"
expect "wrong schema fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir/alien.json"

# mid-table parse failure: the new run is missing a key entirely
emit_fixture "$dir/partial.json"
grep -v 'byte-huffman.decompress_tree_mbps' "$dir/partial.json" > "$dir/partial2.json"
expect "new run missing a key fails" fail \
  sh "$check" --compare "$dir/partial2.json" "$dir/base.json"

expect "unreadable baseline fails" fail \
  sh "$check" --compare "$dir/good.json" "$dir"

# --invariants: within-file acceptance gates (PR7)
expect "invariants pass on a healthy file" ok \
  sh "$check" --invariants "$dir/good.json"

emit_fixture "$dir/lag.json" "sadc-mips.decompress_parallel_mbps=80.0"
expect "parallel decompress below par fails invariants" fail \
  sh "$check" --invariants "$dir/lag.json"

emit_fixture "$dir/slowdict.json" "sadc-mips.compress_serial_mbps=0.5"
expect "compress floor breach fails invariants" fail \
  sh "$check" --invariants "$dir/slowdict.json"

emit_fixture "$dir/nopool.json" "par.tasks=0"
expect "idle pool fails invariants" fail \
  sh "$check" --invariants "$dir/nopool.json"

# --invariants: loadgen SLO gates (PR8). add_loadgen splices a healthy
# loadgen section (all declared SLOs held) into a fixture, with
# overrides in the same KEY=VALUE form as emit_fixture.
add_loadgen() {
  file=$1
  shift
  defaults='loadgen.ok=450 loadgen.p99_ms=8.0 loadgen.shed_rate=0.01 loadgen.deadline_rate=0.0 loadgen.slo_p99_ms=50.0 loadgen.slo_shed_rate=0.05 loadgen.slo_deadline_rate=0.05 loadgen.slo_violations=0'
  {
    for kv in $defaults; do
      key=${kv%%=*} v=${kv#*=}
      for override in "$@"; do
        case $override in "$key="*) v=${override#*=} ;; esac
      done
      echo "  \"$key\": $v,"
    done
  } > "$dir/lg_lines"
  awk -v ins="$dir/lg_lines" '
    /"end": 0/ { while ((getline l < ins) > 0) print l }
    { print }' "$file" > "$file.tmp" && mv "$file.tmp" "$file"
}

# a baseline predating the loadgen section must pass untouched —
# good.json above already did, but pin the tolerance by name
expect "pre-loadgen baseline tolerated by SLO gates" ok \
  sh "$check" --invariants "$dir/good.json"

emit_fixture "$dir/lg_ok.json"
add_loadgen "$dir/lg_ok.json"
expect "loadgen section within SLOs passes" ok \
  sh "$check" --invariants "$dir/lg_ok.json"

emit_fixture "$dir/lg_p99.json"
add_loadgen "$dir/lg_p99.json" "loadgen.p99_ms=80.0"
expect "p99 over declared SLO fails invariants" fail \
  sh "$check" --invariants "$dir/lg_p99.json"

emit_fixture "$dir/lg_shed.json"
add_loadgen "$dir/lg_shed.json" "loadgen.shed_rate=0.2"
expect "shed rate over declared SLO fails invariants" fail \
  sh "$check" --invariants "$dir/lg_shed.json"

emit_fixture "$dir/lg_viol.json"
add_loadgen "$dir/lg_viol.json" "loadgen.slo_violations=2"
expect "recorded SLO violations fail invariants" fail \
  sh "$check" --invariants "$dir/lg_viol.json"

emit_fixture "$dir/lg_dead.json"
add_loadgen "$dir/lg_dead.json" "loadgen.ok=0"
expect "loadgen section with zero ok replies fails" fail \
  sh "$check" --invariants "$dir/lg_dead.json"

if [ "$failures" -ne 0 ]; then
  echo "bench_check_selftest: FAILED ($failures scenario(s))" >&2
  exit 1
fi
echo "bench_check_selftest: OK (21 scenarios)"
