#!/bin/sh
# Overload/chaos gate for the serve layer (ISSUE 6): boots a real
# daemon with deliberately small budgets, fires the seeded socket-level
# chaos mix at it, and checks that it degrades the way the design says
# it must. Machine-independent — every assertion is about structure
# (typed replies, counters, events, exit codes), never timing numbers.
#
# usage: chaos_check.sh CCOMP_EXE
#
# Checks:
#   1. daemon boots with tight budgets (queue-cap 2, io-timeout 1s,
#      idle-timeout 1s, drain 5s, recycle every 3 frames) and the
#      crash op enabled.
#   2. `ccomp chaos --seed 42` PASSes: the daemon stays live through
#      slowloris + truncation + churn + resets + oversize + an overload
#      flood + keep-alive abuse (pipelined bursts, torn frames
#      mid-stream, an inter-frame stall past the idle timeout); every
#      completed job — keep-alive and legacy one-shot alike — is
#      byte-identical to the offline oracle; the flood produces typed
#      Overloaded replies; deadline probes produce typed
#      Deadline_expired replies; pipelined replies arrive in order; the
#      stalled connection is idle-closed.
#   3. the overload telemetry is on /metrics afterwards: sheds,
#      expired deadlines and the crash-op worker restart all counted,
#      queue-depth gauges present, and the keep-alive counters moved —
#      recycles (forced by --max-requests-per-conn 3) and idle closes
#      (forced by the stall).
#   4. SIGTERM drains gracefully: exit 0 within the drain budget, and
#      the events file carries serve.drain.begin / serve.drain.end.
set -eu

[ $# -eq 1 ] || { echo "usage: chaos_check.sh CCOMP_EXE" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac

dir=$(mktemp -d /tmp/chaos_check.XXXXXX)
serve_pid=
cleanup() {
  status=$?
  if [ -n "$serve_pid" ]; then
    kill "$serve_pid" 2>/dev/null || :
    i=0
    while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 30 ]; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -KILL "$serve_pid" 2>/dev/null || :
    wait "$serve_pid" 2>/dev/null || :
  fi
  rm -rf "$dir"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

fail() { echo "chaos_check: $*" >&2; exit 1; }

# -- 1: boot with tight budgets and the crash op enabled ----------------
# --max-requests-per-conn 3 forces recycles under the keep-alive
# attacks; --idle-timeout 1 < the chaos --stall 2 forces idle closes
"$ccomp" serve --port 0 --workers 2 --queue-cap 2 \
  --idle-timeout 1 --io-timeout 1 --drain 5 --max-requests-per-conn 3 \
  --unsafe-crash-op \
  --events "$dir/events.jsonl" > "$dir/serve.log" 2>&1 &
serve_pid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || fail "daemon died at startup: $(cat "$dir/serve.log")"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "daemon never reported its port: $(cat "$dir/serve.log")"

# -- 2: the deterministic chaos mix must pass ---------------------------
# flood 12 > workers*queue-cap + workers = 6, so typed sheds are forced;
# --crash-workers exercises supervision (the daemon has the op enabled)
"$ccomp" chaos --port "$port" --seed 42 --rounds 2 --flood 12 --stall 2 \
  --crash-workers --timeout 10 > "$dir/chaos.log" 2>&1 \
  || fail "chaos campaign FAILed: $(cat "$dir/chaos.log")"
grep -q 'chaos: PASS' "$dir/chaos.log" || fail "no PASS verdict: $(cat "$dir/chaos.log")"
grep -q 'seed 42' "$dir/chaos.log" || fail "replay seed not logged: $(cat "$dir/chaos.log")"
# the keep-alive battery actually ran: bursts got pipelined replies,
# stalls were idle-closed (both also gated inside `chaos` itself)
grep -Eq 'pipeline bursts +[1-9]' "$dir/chaos.log" \
  || fail "no pipeline bursts ran: $(cat "$dir/chaos.log")"
grep -Eq 'interframe stalls +[1-9]' "$dir/chaos.log" \
  || fail "no inter-frame stalls ran: $(cat "$dir/chaos.log")"

# -- 3: overload telemetry on the scrape surface ------------------------
kill -0 "$serve_pid" 2>/dev/null || fail "daemon died during chaos: $(cat "$dir/serve.log")"
"$ccomp" scrape --port "$port" /healthz | grep -q '^ok$' \
  || fail "/healthz not ok after chaos"
"$ccomp" scrape --port "$port" /metrics > "$dir/metrics.txt"

metric() { sed -n "s/^$1 \([0-9][0-9.]*\)\$/\1/p" "$dir/metrics.txt"; }
nonzero() {
  v=$(metric "$1")
  [ -n "$v" ] || fail "/metrics: $1 missing"
  [ "${v%%.*}" -gt 0 ] 2>/dev/null || fail "/metrics: $1 is $v, want > 0"
}
nonzero serve_shed_total
nonzero serve_deadline_expired_total
nonzero serve_worker_restarts_total
# keep-alive telemetry: the 3-frame recycle bound and the 1s idle
# timeout were both hit by the chaos mix above
nonzero serve_frames_total
nonzero serve_conn_recycles_total
nonzero serve_keepalive_idle_closes_total
grep -q '^# TYPE serve_queue_depth_0 gauge$' "$dir/metrics.txt" \
  || fail "/metrics: queue-depth gauge missing"
grep -q '^# TYPE serve_inflight gauge$' "$dir/metrics.txt" \
  || fail "/metrics: inflight gauge missing"

# the shed/restart story must also be in the event log the daemon streams
"$ccomp" scrape --port "$port" /events > "$dir/events_live.jsonl"
grep -q '"event":"serve.shed"' "$dir/events_live.jsonl" \
  || fail "/events: no serve.shed events after a flood"
grep -q '"event":"serve.worker.restart"' "$dir/events_live.jsonl" \
  || fail "/events: no serve.worker.restart event after a crash op"

# -- 4: graceful drain within the budget --------------------------------
start_s=$(date +%s)
kill -TERM "$serve_pid"
status=0
wait "$serve_pid" || status=$?
serve_pid=
elapsed=$(( $(date +%s) - start_s ))
[ "$status" -eq 0 ] || fail "daemon exit status $status on SIGTERM (want graceful 0)"
# drain budget is 5s; allow slack for worker joins and a slow machine
[ "$elapsed" -le 15 ] || fail "drain took ${elapsed}s, budget is 5s"
grep -q '"event":"serve.drain.begin"' "$dir/events.jsonl" \
  || fail "events file: no serve.drain.begin on SIGTERM"
grep -q '"event":"serve.drain.end"' "$dir/events.jsonl" \
  || fail "events file: no serve.drain.end on SIGTERM"

echo "chaos_check: OK (liveness, typed sheds, byte-identity, worker respawn, clean drain in ${elapsed}s)"
