#!/bin/sh
# End-to-end gate for `ccomp loadgen`: boots a real daemon on an
# ephemeral port, fires a short seeded open-loop run, and checks the
# report's structure. Machine-independent — schedule determinism, JSON
# shape and percentile ordering only, never absolute timing numbers —
# so bin/dune wires it into `dune runtest`.
#
# usage: loadgen_check.sh CCOMP_EXE
#
# Checks:
#   1. --print-schedule is deterministic in its seed (same seed, same
#      offsets; different seed, different offsets) without a daemon.
#   2. a run with generous SLOs against a live daemon passes (exit 0),
#      reports replies with server timing records, and --emit-json
#      writes a ccomp-bench-v1 file with every loadgen.* key.
#   3. reported percentiles are monotone: p50 <= p95 <= p99 <= p99.9.
#   4. --merge-json appends the loadgen section to an existing bench
#      file without disturbing its keys or its single closing brace.
#   5. an impossible p99 SLO makes the run exit non-zero.
set -eu

[ $# -eq 1 ] || { echo "usage: loadgen_check.sh CCOMP_EXE" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac

dir=$(mktemp -d /tmp/loadgen_check.XXXXXX)
serve_pid=
cleanup() {
  status=$?
  if [ -n "$serve_pid" ]; then
    kill "$serve_pid" 2>/dev/null || :
    i=0
    while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 20 ]; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -KILL "$serve_pid" 2>/dev/null || :
    wait "$serve_pid" 2>/dev/null || :
  fi
  rm -rf "$dir"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

fail() { echo "loadgen_check: $*" >&2; exit 1; }

# awk-based reader for the flat ccomp-bench-v1 JSON (same idiom as
# tools/bench_check.sh): field 2 is the key, field 4 the value.
json_get() { awk -F'"' -v k="$2" '$2 == k { gsub(/[ :,]/, "", $3); print $3 $4 }' "$1"; }
json_has() { [ -n "$(json_get "$1" "$2")" ]; }

# -- 1: schedule determinism, no daemon needed --------------------------
"$ccomp" loadgen --seed 11 --rate 200 --duration 1 --print-schedule 20 > "$dir/sched_a.txt"
"$ccomp" loadgen --seed 11 --rate 200 --duration 1 --print-schedule 20 > "$dir/sched_b.txt"
cmp -s "$dir/sched_a.txt" "$dir/sched_b.txt" \
  || fail "same seed produced different arrival schedules"
"$ccomp" loadgen --seed 12 --rate 200 --duration 1 --print-schedule 20 > "$dir/sched_c.txt"
cmp -s "$dir/sched_a.txt" "$dir/sched_c.txt" \
  && fail "different seeds produced identical arrival schedules"
[ "$(wc -l < "$dir/sched_a.txt")" -eq 20 ] || fail "--print-schedule 20 did not print 20 offsets"

# -- boot a daemon on an ephemeral port ---------------------------------
"$ccomp" serve --port 0 > "$dir/serve.log" 2>&1 &
serve_pid=$!
port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || fail "daemon died at startup: $(cat "$dir/serve.log")"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "daemon never reported its port: $(cat "$dir/serve.log")"

# -- 2: generous-SLO run passes and emits a complete JSON section -------
"$ccomp" loadgen --port "$port" --seed 7 --rate 150 --duration 2 \
  --payload-bytes 1024 --slo-p99-ms 10000 --slo-shed-rate 0.5 --slo-deadline-rate 0.5 \
  --emit-json "$dir/loadgen.json" > "$dir/run.txt" \
  || fail "generous-SLO run failed: $(cat "$dir/run.txt")"
grep -q 'SLO' "$dir/run.txt" || fail "report never mentions the declared SLOs"

grep -q '"schema": "ccomp-bench-v1"' "$dir/loadgen.json" \
  || fail "--emit-json is not a ccomp-bench-v1 file"
for key in loadgen.offered_rps loadgen.achieved_rps loadgen.sent loadgen.ok \
           loadgen.shed loadgen.deadline_expired loadgen.timed \
           loadgen.p50_ms loadgen.p95_ms loadgen.p99_ms loadgen.p999_ms \
           loadgen.queue_p99_ms loadgen.service_p99_ms loadgen.network_p99_ms \
           loadgen.shed_rate loadgen.deadline_rate loadgen.slo_p99_ms \
           loadgen.slo_shed_rate loadgen.slo_deadline_rate loadgen.slo_violations \
           loadgen.conn_reuse loadgen.conns loadgen.connects loadgen.reconnects \
           loadgen.connect_p50_ms loadgen.connect_p99_ms loadgen.remainder_clamped; do
  json_has "$dir/loadgen.json" "$key" || fail "emitted JSON lacks $key"
done

# connection accounting: reuse defaults on, and a reusing run cannot
# pay more connects than requests (while --no-reuse pays one per
# request, modulo transport errors — checked via the reconnect-free
# lower bound below)
reuse=$(json_get "$dir/loadgen.json" loadgen.conn_reuse)
connects=$(json_get "$dir/loadgen.json" loadgen.connects)
conns=$(json_get "$dir/loadgen.json" loadgen.conns)
sent=$(json_get "$dir/loadgen.json" loadgen.sent)
awk "BEGIN { exit !($reuse == 1) }" || fail "conn_reuse should default to 1, got $reuse"
awk "BEGIN { exit !($connects >= $conns) }" \
  || fail "connects=$connects below the slot count conns=$conns"
awk "BEGIN { exit !($connects < $sent) }" \
  || fail "a reusing run paid connects=$connects for sent=$sent requests — reuse is not reusing"

ok=$(json_get "$dir/loadgen.json" loadgen.ok)
timed=$(json_get "$dir/loadgen.json" loadgen.timed)
awk "BEGIN { exit !($ok >= 1) }" || fail "no successful replies (ok=$ok)"
awk "BEGIN { exit !($timed >= 1) }" \
  || fail "no reply carried a server timing record (timed=$timed)"
awk "BEGIN { exit !($timed <= $ok) }" || fail "timed=$timed exceeds ok=$ok"

# -- 3: percentile monotonicity -----------------------------------------
p50=$(json_get "$dir/loadgen.json" loadgen.p50_ms)
p95=$(json_get "$dir/loadgen.json" loadgen.p95_ms)
p99=$(json_get "$dir/loadgen.json" loadgen.p99_ms)
p999=$(json_get "$dir/loadgen.json" loadgen.p999_ms)
awk "BEGIN { exit !($p50 <= $p95 && $p95 <= $p99 && $p99 <= $p999) }" \
  || fail "percentiles not monotone: p50=$p50 p95=$p95 p99=$p99 p99.9=$p999"

# -- 4: --merge-json extends an existing bench file in place ------------
cat > "$dir/bench.json" <<'EOF'
{
  "schema": "ccomp-bench-v1",
  "scale": 1,
  "jobs": 2,
  "samc.ratio": 0.581
}
EOF
"$ccomp" loadgen --port "$port" --seed 7 --rate 100 --duration 1 \
  --payload-bytes 1024 --merge-json "$dir/bench.json" > /dev/null \
  || fail "merge-json run failed"
json_has "$dir/bench.json" samc.ratio || fail "merge clobbered an existing key"
json_has "$dir/bench.json" loadgen.p99_ms || fail "merge did not add the loadgen section"
[ "$(grep -c '}' "$dir/bench.json")" -eq 1 ] || fail "merge left a malformed brace structure"

# -- 5: an impossible SLO must fail the run -----------------------------
status=0
"$ccomp" loadgen --port "$port" --seed 7 --rate 100 --duration 1 \
  --payload-bytes 1024 --slo-p99-ms 0.000001 > "$dir/violate.txt" 2>&1 || status=$?
[ "$status" -ne 0 ] || fail "impossible p99 SLO did not fail the run"
grep -qi 'SLO violated' "$dir/violate.txt" || fail "SLO failure does not name the violation"

echo "loadgen_check: OK (deterministic schedule, timing records, monotone percentiles, JSON merge, SLO gate)"
