#!/bin/sh
# End-to-end gate for the runtime-telemetry layer (lib/obs/runtime +
# lib/serve/slow): boots a real daemon with a zero slow-sampling
# threshold, pushes jobs through it, and checks that the GC/runtime
# counters are live on /metrics and that the tail-sampled slow-request
# ring is retrievable through both GET /slow and `ccomp stats --slow`.
# Machine-independent — presence and structure only, never timing
# numbers — so bin/dune wires it into `dune runtest`.
#
# usage: runtime_check.sh CCOMP_EXE
#
# Checks:
#   1. `ccomp serve --port 0 --slow-threshold-ms 0` boots.
#   2. after a batch of served jobs, /metrics carries the runtime_*
#      registry families (GC counters, heap gauges, the major-pause
#      histogram) with live nonzero values for the allocation counters
#      and heap gauge — the telemetry must measure, not just register.
#   3. GET /slow returns JSON lines with the full record shape:
#      per-stage GC deltas, stage split, queue depth at admission.
#   4. `ccomp stats --slow` renders the same records (correlation line
#      included) and `--json` passes the raw lines through.
#   5. SIGTERM still stops the daemon gracefully with sampling on.
set -eu

[ $# -eq 1 ] || { echo "usage: runtime_check.sh CCOMP_EXE" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac

dir=$(mktemp -d /tmp/runtime_check.XXXXXX)
serve_pid=
cleanup() {
  status=$?
  if [ -n "$serve_pid" ]; then
    kill "$serve_pid" 2>/dev/null || :
    i=0
    while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 20 ]; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -KILL "$serve_pid" 2>/dev/null || :
    wait "$serve_pid" 2>/dev/null || :
  fi
  rm -rf "$dir"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

fail() { echo "runtime_check: $*" >&2; exit 1; }

"$ccomp" generate --profile go --scale 0.3 --seed 23 -o "$dir/code.bin" >/dev/null

# -- 1: boot with a zero sampling threshold (every request qualifies) ---
"$ccomp" serve --port 0 --slow-threshold-ms 0 > "$dir/serve.log" 2>&1 &
serve_pid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || fail "daemon died at startup: $(cat "$dir/serve.log")"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "daemon never reported its port: $(cat "$dir/serve.log")"

# enough served work that the worker domains allocate through several
# minor heaps — the GC counters below must be genuinely nonzero
"$ccomp" compress --algo samc "$dir/code.bin" -o "$dir/ref.secf" >/dev/null
j=0
while [ $j -lt 4 ]; do
  "$ccomp" submit --port "$port" --op compress --algo samc \
    "$dir/code.bin" -o "$dir/served.secf" >/dev/null
  "$ccomp" submit --port "$port" --op decompress \
    "$dir/served.secf" -o "$dir/back.bin" >/dev/null
  j=$((j + 1))
done
cmp -s "$dir/code.bin" "$dir/back.bin" || fail "served round-trip broke under sampling"

# -- 2: runtime telemetry is live on /metrics ---------------------------
"$ccomp" scrape --port "$port" /metrics > "$dir/metrics.txt"
for family in runtime_gc_minor_collections runtime_gc_minor_words runtime_gc_major_cycles; do
  grep -q "^# TYPE $family counter$" "$dir/metrics.txt" \
    || fail "/metrics: no $family counter family"
done
for gauge in runtime_gc_heap_words runtime_gc_space_overhead runtime_domains; do
  grep -q "^# TYPE $gauge gauge$" "$dir/metrics.txt" \
    || fail "/metrics: no $gauge gauge family"
done
grep -q '^# TYPE runtime_gc_major_pause_us histogram$' "$dir/metrics.txt" \
  || fail "/metrics: no runtime_gc_major_pause_us histogram family"
# live values, not just schema: the served batch allocated for real
grep -q '^runtime_gc_minor_words_total [1-9]' "$dir/metrics.txt" \
  || fail "/metrics: runtime_gc_minor_words_total is zero after served jobs"
grep -q '^runtime_gc_minor_collections_total [1-9]' "$dir/metrics.txt" \
  || fail "/metrics: runtime_gc_minor_collections_total is zero after served jobs"
grep -q '^runtime_gc_heap_words [1-9]' "$dir/metrics.txt" \
  || fail "/metrics: runtime_gc_heap_words gauge is zero"
grep -q '^runtime_domains [1-9]' "$dir/metrics.txt" \
  || fail "/metrics: runtime_domains gauge is zero (no domain ever sampled)"

# -- 3: the slow ring serves full records on GET /slow ------------------
"$ccomp" scrape --port "$port" '/slow?n=16' > "$dir/slow.jsonl"
[ -s "$dir/slow.jsonl" ] || fail "/slow: empty with a zero threshold after served jobs"
grep -q '"kind":"compress"' "$dir/slow.jsonl" \
  || fail "/slow: no sampled compress request"
grep -q '"gc":{"read":{"minor":' "$dir/slow.jsonl" \
  || fail "/slow: records lack per-stage GC deltas"
grep -q '"queue_depth":' "$dir/slow.jsonl" \
  || fail "/slow: records lack the admission queue depth"
grep -q '"work_us":' "$dir/slow.jsonl" \
  || fail "/slow: records lack the stage split"

# -- 4: ccomp stats --slow renders the same ring ------------------------
"$ccomp" stats --slow --port "$port" -n 16 > "$dir/slow_table.txt" \
  || fail "stats --slow failed against the live daemon"
grep -q 'compress' "$dir/slow_table.txt" || fail "stats --slow: table lacks the sampled jobs"
grep -q 'overlapped a major collection' "$dir/slow_table.txt" \
  || fail "stats --slow: no GC-correlation line"
"$ccomp" stats --slow --json --port "$port" -n 16 > "$dir/slow_raw.jsonl" \
  || fail "stats --slow --json failed"
grep -q '"ts_us":' "$dir/slow_raw.jsonl" || fail "stats --slow --json: not raw JSON lines"

# -- 5: clean shutdown with sampling on ---------------------------------
kill -TERM "$serve_pid"
status=0
wait "$serve_pid" || status=$?
serve_pid=
[ "$status" -eq 0 ] || fail "daemon exit status $status on SIGTERM (want graceful 0)"

echo "runtime_check: OK (live GC counters, /slow ring, stats --slow, clean shutdown)"
