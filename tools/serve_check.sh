#!/bin/sh
# End-to-end gate for the serve layer (lib/serve): boots a real daemon
# on an ephemeral port, pushes one job through each protocol, and
# checks the scrape surface. Machine-independent — structure and
# byte-identity only, never timing numbers — so bin/dune wires it into
# `dune runtest`.
#
# usage: serve_check.sh CCOMP_EXE
#
# Checks:
#   1. `ccomp serve --port 0 --acceptors 2` boots and reports its
#      bound port.
#   2. a served compress job (`ccomp submit`) is byte-identical to the
#      offline `ccomp compress` output, and a served decompress job
#      round-trips the image back to the original bytes; the same
#      compress over the legacy one-shot wire shape
#      (`--legacy-oneshot`) is byte-identical too.
#   3. /metrics is OpenMetrics: # TYPE families, _total counters,
#      cumulative histogram buckets ending at le="+Inf", a final # EOF,
#      and the registry-wide schema (samc_/sadc_/memsys_/par_/serve_
#      families are all present, even the ones still at zero) — plus
#      the serve_info info metric (version + bound port as labels),
#      the serve_uptime_seconds gauge, and the per-stage latency
#      histograms (serve_stage_{queue,read,work,write}_us).
#   4. /healthz answers ok; /events carries structured JSON lines for
#      the jobs just served, honours ?level= filtering, and rejects an
#      unknown level with a 400 naming it.
#   5. a 1-sender 1-connection keep-alive loadgen pays exactly one
#      connect for its whole run (reuse recorded in the bench json),
#      and the daemon's frames counter far exceeds its connections
#      counter afterwards.
#   6. SIGTERM stops the daemon promptly and gracefully (exit 0: the
#      accept loop absorbs the break, closes the listener and flushes
#      telemetry before returning).
set -eu

[ $# -eq 1 ] || { echo "usage: serve_check.sh CCOMP_EXE" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac

dir=$(mktemp -d /tmp/serve_check.XXXXXX)
serve_pid=
# Runs on EVERY exit path — success, `fail`, set -e aborts and signals —
# and must never leave a daemon behind: TERM first, then a bounded wait,
# then KILL. The `|| :` guards keep set -e from cutting cleanup short,
# and the saved status makes sure cleanup itself never masks the
# script's verdict.
cleanup() {
  status=$?
  if [ -n "$serve_pid" ]; then
    kill "$serve_pid" 2>/dev/null || :
    i=0
    while kill -0 "$serve_pid" 2>/dev/null && [ "$i" -lt 20 ]; do
      sleep 0.1
      i=$((i + 1))
    done
    kill -KILL "$serve_pid" 2>/dev/null || :
    wait "$serve_pid" 2>/dev/null || :
  fi
  rm -rf "$dir"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

fail() { echo "serve_check: $*" >&2; exit 1; }

"$ccomp" generate --profile go --scale 0.15 --seed 17 -o "$dir/code.bin" >/dev/null

# -- 1: boot on an ephemeral port with a sharded accept path ------------
"$ccomp" serve --port 0 --acceptors 2 > "$dir/serve.log" 2>&1 &
serve_pid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$dir/serve.log")
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || fail "daemon died at startup: $(cat "$dir/serve.log")"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "daemon never reported its port: $(cat "$dir/serve.log")"

# -- 2: served jobs are byte-identical to the offline CLI ---------------
"$ccomp" compress --algo samc "$dir/code.bin" -o "$dir/offline.secf" >/dev/null
"$ccomp" submit --port "$port" --op compress --algo samc \
  "$dir/code.bin" -o "$dir/served.secf" >/dev/null
cmp -s "$dir/offline.secf" "$dir/served.secf" \
  || fail "served compress is not byte-identical to offline compress"

"$ccomp" submit --port "$port" --op decompress "$dir/served.secf" -o "$dir/back.bin" >/dev/null
cmp -s "$dir/code.bin" "$dir/back.bin" || fail "served decompress did not round-trip"

# the pre-v4 one-shot wire shape (write, shutdown, read to EOF) must
# keep working against a keep-alive daemon, byte for byte
"$ccomp" submit --port "$port" --legacy-oneshot --op compress --algo samc \
  "$dir/code.bin" -o "$dir/served_legacy.secf" >/dev/null
cmp -s "$dir/offline.secf" "$dir/served_legacy.secf" \
  || fail "legacy one-shot compress is not byte-identical to offline compress"

# -- 3: /metrics is OpenMetrics with the full registry schema -----------
"$ccomp" scrape --port "$port" /metrics > "$dir/metrics.txt"
grep -q '^# TYPE [a-z_]* counter$' "$dir/metrics.txt" || fail "/metrics: no counter families"
grep -q '^# TYPE [a-z_]* histogram$' "$dir/metrics.txt" || fail "/metrics: no histogram families"
grep -q '_total [0-9]' "$dir/metrics.txt" || fail "/metrics: counters lack the _total suffix"
grep -q '_bucket{le="+Inf"}' "$dir/metrics.txt" || fail "/metrics: histograms lack a +Inf bucket"
tail -n 1 "$dir/metrics.txt" | grep -q '^# EOF$' || fail "/metrics: missing # EOF terminator"
for family in samc_ sadc_ memsys_ par_ serve_; do
  grep -q "^# TYPE $family" "$dir/metrics.txt" \
    || fail "/metrics: registry family $family missing from the schema"
done
grep -q '^serve_jobs_compress_total 2$' "$dir/metrics.txt" \
  || fail "/metrics: the served compress jobs (keep-alive + legacy) were not counted"
# info metric: build/config facts as labels on a constant-1 sample
grep -q '^# TYPE serve info$' "$dir/metrics.txt" || fail "/metrics: no serve info family"
grep -q '^serve_info{.*version=".*".*} 1$' "$dir/metrics.txt" \
  || fail "/metrics: serve_info lacks a version label or constant-1 value"
grep -q '^serve_info{.*port="'"$port"'".*} 1$' "$dir/metrics.txt" \
  || fail "/metrics: serve_info does not carry the bound port"
grep -q '^serve_info{.*acceptors="2".*} 1$' "$dir/metrics.txt" \
  || fail "/metrics: serve_info does not carry the acceptor count"
# uptime gauge: non-negative and refreshed at scrape time
grep -q '^# TYPE serve_uptime_seconds gauge$' "$dir/metrics.txt" \
  || fail "/metrics: no serve_uptime_seconds gauge"
grep -q '^serve_uptime_seconds [0-9]' "$dir/metrics.txt" \
  || fail "/metrics: serve_uptime_seconds missing or negative"
# per-stage latency histograms stamped by the served jobs above
for stage in queue read work write; do
  grep -q "^# TYPE serve_stage_${stage}_us histogram$" "$dir/metrics.txt" \
    || fail "/metrics: no serve_stage_${stage}_us histogram"
done
grep -q '^serve_request_us_count [1-9]' "$dir/metrics.txt" \
  || fail "/metrics: served jobs did not land in serve_request_us"
# cumulative buckets must be monotone non-decreasing within each family
awk -F'[}] ' '
  /_bucket\{le=/ {
    split($0, a, "{"); name = a[1]
    if (name == prev && $2 + 0 < last + 0) { print "non-monotone bucket in " name; exit 1 }
    prev = name; last = $2
  }' "$dir/metrics.txt" || fail "/metrics: cumulative buckets decrease"

# -- 4: healthz + structured events -------------------------------------
"$ccomp" scrape --port "$port" /healthz | grep -q '^ok$' || fail "/healthz did not answer ok"
"$ccomp" scrape --port "$port" /events > "$dir/events.jsonl"
grep -q '"event":"serve.job.done"' "$dir/events.jsonl" \
  || fail "/events: no serve.job.done event for the jobs just served"
grep -q '"ts_us":' "$dir/events.jsonl" || fail "/events: events lack timestamps"
# ?level= filters the ring server-side; an unknown level is a 400
"$ccomp" scrape --port "$port" '/events?level=info&n=50' > "$dir/events_info.jsonl"
grep -q '"event":"serve.start"' "$dir/events_info.jsonl" \
  || fail "/events?level=info dropped the info-level serve.start event"
grep -q '"level":"debug"' "$dir/events_info.jsonl" \
  && fail "/events?level=info leaked debug-level events"
"$ccomp" scrape --port "$port" '/events?level=error&n=50' > "$dir/events_err.jsonl"
grep -qE '"level":"(debug|info)"' "$dir/events_err.jsonl" \
  && fail "/events?level=error leaked lower-level events"
if "$ccomp" scrape --port "$port" '/events?level=noise' > "$dir/events_bad.txt" 2>&1; then
  fail "/events?level=noise was not rejected"
fi
grep -q 'noise' "$dir/events_bad.txt" || fail "/events level rejection does not name the level"

# -- 5: keep-alive: one connection carries a whole loadgen run ----------
# (after the events checks: every frame books a serve.request debug
# event, so ~150 pings would push the job events out of the default
# /events view)
"$ccomp" loadgen --port "$port" --rate 150 --duration 1 --senders 1 --conns 1 \
  --mix-compress 0 --mix-decompress 0 --mix-ping 1 \
  --emit-json "$dir/keepalive.json" > "$dir/keepalive.log" 2>&1 \
  || fail "keep-alive loadgen failed: $(cat "$dir/keepalive.log")"
awk -F': ' '/"loadgen.connects"/ { found = 1; if ($2 + 0 != 1) exit 1 }
            END { if (!found) exit 1 }' "$dir/keepalive.json" \
  || fail "keep-alive: a 1-connection loadgen paid more than one connect"
awk -F': ' '/"loadgen.conn_reuse"/ { found = 1; if ($2 + 0 != 1) exit 1 }
            END { if (!found) exit 1 }' "$dir/keepalive.json" \
  || fail "keep-alive: conn_reuse not recorded in the bench json"
# daemon-side telemetry agrees: the ~150 ping frames all rode one
# connection, so frames must far exceed connections
"$ccomp" scrape --port "$port" /metrics > "$dir/metrics2.txt"
frames=$(awk '/^serve_frames_total /{print $2}' "$dir/metrics2.txt")
conns=$(awk '/^serve_connections_total /{print $2}' "$dir/metrics2.txt")
[ -n "$frames" ] || fail "/metrics: no serve_frames_total counter"
[ -n "$conns" ] || fail "/metrics: no serve_connections_total counter"
[ "$frames" -ge $((conns + 50)) ] \
  || fail "/metrics: frames ($frames) do not exceed connections ($conns) — keep-alive is not keeping connections alive"

# -- 6: clean shutdown on SIGTERM ---------------------------------------
kill -TERM "$serve_pid"
status=0
wait "$serve_pid" || status=$?
serve_pid=
[ "$status" -eq 0 ] || fail "daemon exit status $status on SIGTERM (want graceful 0)"

echo "serve_check: OK (boot, byte-identity, OpenMetrics scrape, events, clean shutdown)"
