#!/bin/sh
# Benchmark regression gate over the flat JSON written by
# `bench --emit-json` (see BENCH_PR10.json for the committed baseline).
#
# Modes:
#   bench_check.sh [BASELINE]
#       Run the full throughput suite with `dune exec bench/main.exe` and
#       fail (exit 1) if any *decompress* throughput fell more than 20%
#       below the baseline (default: BENCH_PR10.json next to this repo's
#       root). Compress keys are reported but not gated — dictionary
#       construction time is dominated by search heuristics, not the
#       kernels this gate protects.
#   bench_check.sh --compare NEW BASELINE
#       Same gate, but over two already-emitted JSON files (no dune).
#   bench_check.sh --smoke BENCH_EXE
#       Run BENCH_EXE for a fraction of a second and validate only the
#       JSON structure (every expected key present, every value a
#       positive number). Machine-independent, so it is safe to wire
#       into `dune runtest` — which bench/dune does.
#   bench_check.sh --validate FILE
#       Structure validation of an existing file.
#   bench_check.sh --invariants FILE
#       Absolute acceptance gates over an emitted file (PR7): parallel
#       decompress >= 0.95 * serial at the file's jobs setting for SAMC,
#       SADC and byte-huffman; SADC compress >= 1.0 MB/s; pool metrics
#       show the domain pool actually ran (tasks dispatched, queue-depth
#       histogram non-empty, jobs gauge set). PR8 adds loadgen SLO
#       gates when the file carries a loadgen section: every declared
#       loadgen.slo_* bound must hold against the measured key in the
#       same file, and the run must have recorded zero violations;
#       files predating the section pass untouched. PR9 adds runtime
#       gates: when the file carries daemon-side runtime.* telemetry,
#       the GC counters must be live (nonzero allocation over the run),
#       and a recorded loadgen.capacity_rps must be >= 1 rps. PR10
#       adds the keep-alive gate: a capacity measured with connection
#       reuse on (loadgen.conn_reuse = 1) must strictly beat the PR9
#       reconnect-per-request capacity of 580.5 rps. Run against the
#       committed BENCH_PR*.json this is deterministic, so bench/dune
#       wires it into runtest.
set -eu

THRESHOLD_PCT=20

usage() {
  sed -n '2,29p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

# Flat-JSON accessor: value of "key": 1.234 lines, empty when absent.
json_get() { # file key
  awk -F'"' -v k="$2" '$2 == k { v = $3; gsub(/[^0-9.eE+-]/, "", v); print v; exit }' "$1"
}

# Presence is separate from parseability: a key whose value is garbage
# must not be mistaken for a key the baseline predates.
json_has() { # file key
  awk -F'"' -v k="$2" '$2 == k { found = 1; exit } END { exit !found }' "$1"
}

expected_keys='
samc-mips.compress_serial_mbps
samc-mips.compress_parallel_mbps
samc-mips.decompress_serial_mbps
samc-mips.decompress_parallel_mbps
samc-mips.decompress_ref_mbps
sadc-mips.compress_serial_mbps
sadc-mips.compress_parallel_mbps
sadc-mips.decompress_serial_mbps
sadc-mips.decompress_parallel_mbps
byte-huffman.compress_serial_mbps
byte-huffman.compress_parallel_mbps
byte-huffman.decompress_mbps
byte-huffman.decompress_parallel_mbps
byte-huffman.decompress_tree_mbps
samc-mips.decompress_jobs1_mbps
samc-mips.decompress_jobs2_mbps
samc-mips.decompress_jobs4_mbps
samc-mips.decompress_jobs8_mbps
sadc-mips.decompress_jobs1_mbps
sadc-mips.decompress_jobs2_mbps
sadc-mips.decompress_jobs4_mbps
sadc-mips.decompress_jobs8_mbps
byte-huffman.decompress_jobs1_mbps
byte-huffman.decompress_jobs2_mbps
byte-huffman.decompress_jobs4_mbps
byte-huffman.decompress_jobs8_mbps
par.tasks
par.jobs
par.queue_depth_count
'

# Shared sanity for any file this gate reads: it must exist, be
# non-empty, and carry the ccomp-bench-v1 schema marker — anything else
# gets a message naming the file and what was wrong with it, instead of
# a silent pass or a bare awk error.
check_schema() { # file role
  file=$1 role=$2
  [ -e "$file" ] || { echo "bench_check: $role $file does not exist" >&2; exit 1; }
  [ -r "$file" ] || { echo "bench_check: cannot read $role $file" >&2; exit 1; }
  [ -s "$file" ] || { echo "bench_check: $role $file is empty" >&2; exit 1; }
  schema=$(awk -F'"' '$2 == "schema" { print $4; exit }' "$file")
  [ "$schema" = "ccomp-bench-v1" ] || {
    echo "bench_check: $role $file: bad or missing schema (got '${schema:-none}');" \
         "expected a ccomp-bench-v1 file written by 'bench --emit-json'" >&2
    exit 1
  }
}

validate() { # file
  file=$1
  check_schema "$file" "file"
  bad=0
  for key in $expected_keys; do
    v=$(json_get "$file" "$key")
    if [ -z "$v" ]; then
      echo "bench_check: $file: missing key $key" >&2
      bad=1
    elif ! awk -v v="$v" 'BEGIN { exit !(v + 0 > 0) }'; then
      echo "bench_check: $file: non-positive value $v for $key" >&2
      bad=1
    fi
  done
  [ "$bad" -eq 0 ] || exit 1
  echo "bench_check: $file: structure OK ($(echo "$expected_keys" | grep -c .) keys)"
}

# Every key is evaluated — a regression never stops the walk early.
# The verdict comes once, at the end, after the full summary table, so
# a failing run still names every key that moved.
compare() { # new baseline
  new=$1 base=$2
  validate "$new"
  check_schema "$base" "baseline"
  fail=0
  rows=""
  for key in $expected_keys; do
    case $key in *decompress*) gated=yes ;; *) gated=no ;; esac
    old=$(json_get "$base" "$key")
    cur=$(json_get "$new" "$key")
    if ! json_has "$base" "$key"; then
      # a key the baseline predates is not a regression
      old="-" status="new-since-baseline"
    elif [ -z "$old" ] || ! awk -v o="$old" 'BEGIN { exit !(o + 0 > 0) }'; then
      # a baseline that parses but carries garbage for a key means the
      # gate cannot vouch for that key — that must fail, not pass
      status="BAD-BASELINE-VALUE"
      fail=1
    elif awk -v o="$old" -v c="$cur" -v t="$THRESHOLD_PCT" \
           'BEGIN { exit !(c + 0 < o * (100 - t) / 100) }'; then
      if [ "$gated" = yes ]; then
        status="REGRESSION"
        fail=1
      else
        status="slower(ungated)"
      fi
    elif [ "$gated" = yes ]; then
      status="ok"
    else
      status="ok(ungated)"
    fi
    rows="$rows$key|$cur|$old|$status
"
  done
  echo "bench_check: $new vs baseline $base (gate: decompress keys, -${THRESHOLD_PCT}%)"
  printf '%s' "$rows" | awk -F'|' '
    BEGIN { printf "  %-42s %12s %12s %9s  %s\n", "key", "new MB/s", "base MB/s", "delta", "status" }
    {
      d = "-"
      if ($2 + 0 > 0 && $3 + 0 > 0) d = sprintf("%+.1f%%", ($2 - $3) / $3 * 100)
      printf "  %-42s %12.2f %12s %9s  %s\n", $1, $2, $3, d, $4
    }'
  if [ "$fail" -ne 0 ]; then
    echo "bench_check: FAILED — decompress regression >${THRESHOLD_PCT}% or unusable baseline value (vs $base)" >&2
    exit 1
  fi
  echo "bench_check: PASS (no decompress regression >${THRESHOLD_PCT}% vs $base)"
}

# The PR7 acceptance gates. Ratio invariants compare keys within one
# file (same machine, same run), so they hold across hosts; the one
# absolute floor (SADC compress MB/s) encodes the incremental
# dictionary builder's ~9x win over the 0.14 MB/s rescan baseline and
# is checked against the committed benchmark file.
invariants() { # file
  file=$1
  check_schema "$file" "file"
  fail=0
  ratio_ge() { # name numerator-key denominator-key factor
    n=$(json_get "$file" "$2"); d=$(json_get "$file" "$3")
    if [ -z "$n" ] || [ -z "$d" ]; then
      echo "  INVARIANT $1: missing key ($2 or $3)" >&2; fail=1
    elif awk -v n="$n" -v d="$d" -v f="$4" 'BEGIN { exit !(n + 0 >= d * f) }'; then
      echo "  ok  $1: $n >= $4 * $d"
    else
      echo "  INVARIANT $1 FAILED: $n < $4 * $d" >&2; fail=1
    fi
  }
  abs_ge() { # name key floor
    v=$(json_get "$file" "$2")
    if [ -z "$v" ]; then
      echo "  INVARIANT $1: missing key $2" >&2; fail=1
    elif awk -v v="$v" -v f="$3" 'BEGIN { exit !(v + 0 >= f + 0) }'; then
      echo "  ok  $1: $v >= $3"
    else
      echo "  INVARIANT $1 FAILED: $v < $3" >&2; fail=1
    fi
  }
  echo "bench_check: invariants over $file"
  ratio_ge "samc parallel decompress on par" \
    samc-mips.decompress_parallel_mbps samc-mips.decompress_serial_mbps 0.95
  ratio_ge "sadc parallel decompress on par" \
    sadc-mips.decompress_parallel_mbps sadc-mips.decompress_serial_mbps 0.95
  ratio_ge "byte-huffman parallel decompress on par" \
    byte-huffman.decompress_parallel_mbps byte-huffman.decompress_mbps 0.95
  abs_ge "sadc incremental dictionary compress floor" sadc-mips.compress_serial_mbps 1.0
  abs_ge "pool dispatched tasks" par.tasks 1
  abs_ge "pool queue-depth histogram non-empty" par.queue_depth_count 1
  abs_ge "pool jobs gauge set" par.jobs 2
  # PR8: loadgen SLO gates. A baseline that predates the loadgen
  # section (no loadgen.p99_ms) passes untouched; once the section is
  # present, every SLO the run declared must hold, key-vs-key within
  # the same file — no cross-machine absolute numbers.
  key_le() { # name key bound-key
    v=$(json_get "$file" "$2"); b=$(json_get "$file" "$3")
    if [ -z "$v" ] || [ -z "$b" ]; then
      echo "  INVARIANT $1: missing key ($2 or $3)" >&2; fail=1
    elif awk -v v="$v" -v b="$b" 'BEGIN { exit !(v + 0 <= b + 0) }'; then
      echo "  ok  $1: $v <= $b"
    else
      echo "  INVARIANT $1 FAILED: $v > $b" >&2; fail=1
    fi
  }
  if json_has "$file" loadgen.p99_ms; then
    abs_ge "loadgen served at least one reply" loadgen.ok 1
    if json_has "$file" loadgen.slo_p99_ms; then
      key_le "loadgen p99 within declared SLO" loadgen.p99_ms loadgen.slo_p99_ms
    fi
    if json_has "$file" loadgen.slo_shed_rate; then
      key_le "loadgen shed rate within declared SLO" loadgen.shed_rate loadgen.slo_shed_rate
    fi
    if json_has "$file" loadgen.slo_deadline_rate; then
      key_le "loadgen deadline-expired rate within declared SLO" \
        loadgen.deadline_rate loadgen.slo_deadline_rate
    fi
    v=$(json_get "$file" loadgen.slo_violations)
    if [ -n "$v" ] && awk -v v="$v" 'BEGIN { exit !(v + 0 > 0) }'; then
      echo "  INVARIANT loadgen recorded SLO violations FAILED: $v > 0" >&2; fail=1
    else
      echo "  ok  loadgen recorded no SLO violations"
    fi
  else
    echo "  note: no loadgen section (pre-PR8 baseline) — SLO gates skipped"
  fi
  # PR9: runtime-telemetry gates, presence-guarded the same way. Once a
  # loadgen run recorded daemon-side runtime.* keys, the counters must
  # be live — a run that served real traffic allocates through many
  # minor heaps, so zeros mean the telemetry silently broke.
  if json_has "$file" runtime.minor_collections; then
    abs_ge "daemon GC saw the run (minor collections)" runtime.minor_collections 1
    abs_ge "daemon allocation recorded" runtime.alloc_mb 0.000001
    abs_ge "per-request allocation recorded" runtime.alloc_kb_per_req 0.000001
  else
    echo "  note: no runtime section (pre-PR9 baseline) — runtime gates skipped"
  fi
  if json_has "$file" loadgen.capacity_rps; then
    abs_ge "ramp-measured SLO capacity is a real load" loadgen.capacity_rps 1
    # PR10: the keep-alive floor. With connection reuse on, the ramped
    # capacity must strictly beat the PR9 reconnect-per-request
    # capacity (580.5 rps) — persistent connections are the whole
    # point. A deliberate --no-reuse A/B file skips the floor.
    if json_has "$file" loadgen.conn_reuse; then
      reuse=$(json_get "$file" loadgen.conn_reuse)
      cap=$(json_get "$file" loadgen.capacity_rps)
      if awk -v r="$reuse" 'BEGIN { exit !(r + 0 >= 1) }'; then
        if awk -v c="$cap" 'BEGIN { exit !(c + 0 > 580.5) }'; then
          echo "  ok  keep-alive capacity beats the PR9 reconnect baseline: $cap > 580.5"
        else
          echo "  INVARIANT keep-alive capacity FAILED: $cap <= 580.5 (PR9 reconnect baseline)" >&2
          fail=1
        fi
      else
        echo "  note: capacity measured with --no-reuse — keep-alive floor skipped"
      fi
    else
      echo "  note: no conn_reuse key (pre-PR10 file) — keep-alive floor skipped"
    fi
  fi
  if [ "$fail" -ne 0 ]; then
    echo "bench_check: INVARIANTS FAILED for $file" >&2
    exit 1
  fi
  echo "bench_check: invariants PASS for $file"
}

case "${1:-}" in
  --validate)
    [ $# -eq 2 ] || usage
    validate "$2"
    ;;
  --invariants)
    [ $# -eq 2 ] || usage
    invariants "$2"
    ;;
  --compare)
    [ $# -eq 3 ] || usage
    compare "$2" "$3"
    ;;
  --smoke)
    [ $# -eq 2 ] || usage
    case $2 in */*) exe=$2 ;; *) exe=./$2 ;; esac
    out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
    # EXIT alone does not cover signals in every shell: an interrupted
    # run must still remove its temp file and exit nonzero
    trap 'rm -f "$out"' EXIT
    trap 'exit 130' INT
    trap 'exit 143' TERM
    trap 'exit 129' HUP
    "$exe" --emit-json "$out" --scale 0.05 --min-time 0.01 --jobs 2 >/dev/null
    validate "$out"
    ;;
  -h|--help)
    usage
    ;;
  *)
    root=$(cd "$(dirname "$0")/.." && pwd)
    baseline=${1:-$root/BENCH_PR10.json}
    out=$(mktemp /tmp/bench_full.XXXXXX.json)
    trap 'rm -f "$out"' EXIT
    trap 'exit 130' INT
    trap 'exit 143' TERM
    trap 'exit 129' HUP
    (cd "$root" && dune exec bench/main.exe -- --emit-json "$out" --min-time 0.5)
    compare "$out" "$baseline"
    ;;
esac
