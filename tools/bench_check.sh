#!/bin/sh
# Benchmark regression gate over the flat JSON written by
# `bench --emit-json` (see BENCH_PR2.json for the committed baseline).
#
# Modes:
#   bench_check.sh [BASELINE]
#       Run the full throughput suite with `dune exec bench/main.exe` and
#       fail (exit 1) if any *decompress* throughput fell more than 20%
#       below the baseline (default: BENCH_PR2.json next to this repo's
#       root). Compress keys are reported but not gated — dictionary
#       construction time is dominated by search heuristics, not the
#       kernels this gate protects.
#   bench_check.sh --compare NEW BASELINE
#       Same gate, but over two already-emitted JSON files (no dune).
#   bench_check.sh --smoke BENCH_EXE
#       Run BENCH_EXE for a fraction of a second and validate only the
#       JSON structure (every expected key present, every value a
#       positive number). Machine-independent, so it is safe to wire
#       into `dune runtest` — which bench/dune does.
#   bench_check.sh --validate FILE
#       Structure validation of an existing file.
set -eu

THRESHOLD_PCT=20

usage() {
  sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

# Flat-JSON accessor: value of "key": 1.234 lines, empty when absent.
json_get() { # file key
  awk -F'"' -v k="$2" '$2 == k { v = $3; gsub(/[^0-9.eE+-]/, "", v); print v; exit }' "$1"
}

# Presence is separate from parseability: a key whose value is garbage
# must not be mistaken for a key the baseline predates.
json_has() { # file key
  awk -F'"' -v k="$2" '$2 == k { found = 1; exit } END { exit !found }' "$1"
}

expected_keys='
samc-mips.compress_serial_mbps
samc-mips.compress_parallel_mbps
samc-mips.decompress_serial_mbps
samc-mips.decompress_parallel_mbps
samc-mips.decompress_ref_mbps
sadc-mips.compress_serial_mbps
sadc-mips.compress_parallel_mbps
sadc-mips.decompress_serial_mbps
sadc-mips.decompress_parallel_mbps
byte-huffman.compress_serial_mbps
byte-huffman.compress_parallel_mbps
byte-huffman.decompress_mbps
byte-huffman.decompress_tree_mbps
'

# Shared sanity for any file this gate reads: it must exist, be
# non-empty, and carry the ccomp-bench-v1 schema marker — anything else
# gets a message naming the file and what was wrong with it, instead of
# a silent pass or a bare awk error.
check_schema() { # file role
  file=$1 role=$2
  [ -e "$file" ] || { echo "bench_check: $role $file does not exist" >&2; exit 1; }
  [ -r "$file" ] || { echo "bench_check: cannot read $role $file" >&2; exit 1; }
  [ -s "$file" ] || { echo "bench_check: $role $file is empty" >&2; exit 1; }
  schema=$(awk -F'"' '$2 == "schema" { print $4; exit }' "$file")
  [ "$schema" = "ccomp-bench-v1" ] || {
    echo "bench_check: $role $file: bad or missing schema (got '${schema:-none}');" \
         "expected a ccomp-bench-v1 file written by 'bench --emit-json'" >&2
    exit 1
  }
}

validate() { # file
  file=$1
  check_schema "$file" "file"
  bad=0
  for key in $expected_keys; do
    v=$(json_get "$file" "$key")
    if [ -z "$v" ]; then
      echo "bench_check: $file: missing key $key" >&2
      bad=1
    elif ! awk -v v="$v" 'BEGIN { exit !(v + 0 > 0) }'; then
      echo "bench_check: $file: non-positive value $v for $key" >&2
      bad=1
    fi
  done
  [ "$bad" -eq 0 ] || exit 1
  echo "bench_check: $file: structure OK ($(echo "$expected_keys" | grep -c .) keys)"
}

# Every key is evaluated — a regression never stops the walk early.
# The verdict comes once, at the end, after the full summary table, so
# a failing run still names every key that moved.
compare() { # new baseline
  new=$1 base=$2
  validate "$new"
  check_schema "$base" "baseline"
  fail=0
  rows=""
  for key in $expected_keys; do
    case $key in *decompress*) gated=yes ;; *) gated=no ;; esac
    old=$(json_get "$base" "$key")
    cur=$(json_get "$new" "$key")
    if ! json_has "$base" "$key"; then
      # a key the baseline predates is not a regression
      old="-" status="new-since-baseline"
    elif [ -z "$old" ] || ! awk -v o="$old" 'BEGIN { exit !(o + 0 > 0) }'; then
      # a baseline that parses but carries garbage for a key means the
      # gate cannot vouch for that key — that must fail, not pass
      status="BAD-BASELINE-VALUE"
      fail=1
    elif awk -v o="$old" -v c="$cur" -v t="$THRESHOLD_PCT" \
           'BEGIN { exit !(c + 0 < o * (100 - t) / 100) }'; then
      if [ "$gated" = yes ]; then
        status="REGRESSION"
        fail=1
      else
        status="slower(ungated)"
      fi
    elif [ "$gated" = yes ]; then
      status="ok"
    else
      status="ok(ungated)"
    fi
    rows="$rows$key|$cur|$old|$status
"
  done
  echo "bench_check: $new vs baseline $base (gate: decompress keys, -${THRESHOLD_PCT}%)"
  printf '%s' "$rows" | awk -F'|' '
    BEGIN { printf "  %-42s %12s %12s %9s  %s\n", "key", "new MB/s", "base MB/s", "delta", "status" }
    {
      d = "-"
      if ($2 + 0 > 0 && $3 + 0 > 0) d = sprintf("%+.1f%%", ($2 - $3) / $3 * 100)
      printf "  %-42s %12.2f %12s %9s  %s\n", $1, $2, $3, d, $4
    }'
  if [ "$fail" -ne 0 ]; then
    echo "bench_check: FAILED — decompress regression >${THRESHOLD_PCT}% or unusable baseline value (vs $base)" >&2
    exit 1
  fi
  echo "bench_check: PASS (no decompress regression >${THRESHOLD_PCT}% vs $base)"
}

case "${1:-}" in
  --validate)
    [ $# -eq 2 ] || usage
    validate "$2"
    ;;
  --compare)
    [ $# -eq 3 ] || usage
    compare "$2" "$3"
    ;;
  --smoke)
    [ $# -eq 2 ] || usage
    case $2 in */*) exe=$2 ;; *) exe=./$2 ;; esac
    out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
    # EXIT alone does not cover signals in every shell: an interrupted
    # run must still remove its temp file and exit nonzero
    trap 'rm -f "$out"' EXIT
    trap 'exit 130' INT
    trap 'exit 143' TERM
    trap 'exit 129' HUP
    "$exe" --emit-json "$out" --scale 0.05 --min-time 0.01 --jobs 2 >/dev/null
    validate "$out"
    ;;
  -h|--help)
    usage
    ;;
  *)
    root=$(cd "$(dirname "$0")/.." && pwd)
    baseline=${1:-$root/BENCH_PR2.json}
    out=$(mktemp /tmp/bench_full.XXXXXX.json)
    trap 'rm -f "$out"' EXIT
    trap 'exit 130' INT
    trap 'exit 143' TERM
    trap 'exit 129' HUP
    (cd "$root" && dune exec bench/main.exe -- --emit-json "$out" --min-time 0.5)
    compare "$out" "$baseline"
    ;;
esac
