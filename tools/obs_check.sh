#!/bin/sh
# Observability smoke gate over the ccomp CLI's --metrics/--trace
# outputs (lib/obs). Machine-independent — it checks structure and the
# byte-identity guarantee, never timing numbers — so bin/dune wires it
# into `dune runtest`.
#
# usage: obs_check.sh CCOMP_EXE
#
# Checks:
#   1. compress --metrics/--trace writes a ccomp-obs-v1 snapshot with the
#      per-stream bits_in/bits_out counters and a per-block latency
#      histogram carrying count/p50/p95/p99.
#   2. the trace file is a Chrome trace_event JSON array of "ph":"X"
#      slices (loadable in chrome://tracing / Perfetto).
#   3. instrumentation only observes: the .secf written with metrics and
#      tracing enabled is byte-identical to one written without.
#   4. decompress --metrics records the decode side and round-trips the
#      image back to the original bytes.
#   5. `ccomp stats` renders the snapshot and `ccomp stats --json`
#      re-emits it with the schema intact.
set -eu

[ $# -eq 1 ] || { echo "usage: obs_check.sh CCOMP_EXE" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac

dir=$(mktemp -d /tmp/obs_check.XXXXXX)
trap 'rm -rf "$dir"' EXIT

fail() { echo "obs_check: $*" >&2; exit 1; }

"$ccomp" generate --profile go --scale 0.15 --seed 11 -o "$dir/code.bin" >/dev/null

# -- 1+3: instrumented compress, byte-identical to the plain one --------
"$ccomp" compress --algo samc "$dir/code.bin" -o "$dir/plain.secf" >/dev/null
"$ccomp" compress --algo samc --metrics "$dir/m.json" --trace "$dir/t.json" \
  "$dir/code.bin" -o "$dir/obs.secf" >/dev/null
cmp -s "$dir/plain.secf" "$dir/obs.secf" \
  || fail "compress output changed when metrics+tracing were enabled"

[ -s "$dir/m.json" ] || fail "m.json missing or empty"
grep -q '"schema": "ccomp-obs-v1"' "$dir/m.json" || fail "m.json: missing ccomp-obs-v1 schema"
for key in samc.compress.blocks samc.stream0.bits_in samc.stream0.bits_out \
           samc.stream3.bits_in samc.stream3.bits_out; do
  grep -q "\"$key\":" "$dir/m.json" || fail "m.json: missing counter $key"
done
hist=$(grep '"samc.compress.block_us":' "$dir/m.json") \
  || fail "m.json: missing histogram samc.compress.block_us"
for field in count p50 p95 p99; do
  echo "$hist" | grep -q "\"$field\":" \
    || fail "m.json: samc.compress.block_us histogram lacks $field"
done

# -- 2: the trace is a Chrome trace_event array -------------------------
[ -s "$dir/t.json" ] || fail "t.json missing or empty"
head -c 1 "$dir/t.json" | grep -q '\[' || fail "t.json: not a JSON array"
tail -c 3 "$dir/t.json" | grep -q '\]' || fail "t.json: unterminated JSON array"
grep -q '"ph":"X"' "$dir/t.json" || fail "t.json: no complete ('ph':'X') trace slices"
for field in name cat ts dur pid tid; do
  grep -q "\"$field\":" "$dir/t.json" || fail "t.json: events lack the $field field"
done

# -- 4: decompress side -------------------------------------------------
"$ccomp" decompress --metrics "$dir/dm.json" "$dir/obs.secf" -o "$dir/code.out" >/dev/null
cmp -s "$dir/code.bin" "$dir/code.out" || fail "instrumented decompress did not round-trip"
grep -q '"samc.decompress.blocks":' "$dir/dm.json" \
  || fail "dm.json: missing counter samc.decompress.blocks"
grep -q '"samc.decompress.block_us":' "$dir/dm.json" \
  || fail "dm.json: missing histogram samc.decompress.block_us"

# -- 5: stats round-trip ------------------------------------------------
"$ccomp" stats "$dir/m.json" > "$dir/table.txt"
grep -q 'samc.stream0.bits_in' "$dir/table.txt" || fail "stats table lacks per-stream counters"
"$ccomp" stats --json "$dir/m.json" > "$dir/roundtrip.json"
grep -q '"schema": "ccomp-obs-v1"' "$dir/roundtrip.json" \
  || fail "stats --json lost the schema on round-trip"
grep -q '"samc.compress.block_us":' "$dir/roundtrip.json" \
  || fail "stats --json lost histograms on round-trip"

echo "obs_check: OK (metrics schema, trace shape, byte-identity, stats round-trip)"
