#!/bin/sh
# Live perf smoke for the persistent-pool pipeline (PR7).
#
#   perf_check.sh BENCH_EXE [BENCH_CHECK]
#
# Runs the throughput suite for a fraction of a second at jobs=2,
# validates the emitted JSON through bench_check.sh --validate, then
# checks what must hold on ANY machine at any load:
#   - pool metrics prove the persistent pool ran: tasks dispatched over
#     at least 3 epochs (one per codec pass), queue-depth histogram
#     non-empty, jobs gauge = 2, worker busy time accounted;
#   - live parallel decompress stays above 0.5 * serial for every codec.
#     The committed-file invariant gate holds the real on-par bar
#     (bench_check.sh --invariants); this live bound only catches a
#     pipeline that re-grew a serial bottleneck or lost the pool
#     entirely, so it tolerates a loaded CI host without flapping.
set -eu

[ $# -ge 1 ] || { echo "usage: perf_check.sh BENCH_EXE [BENCH_CHECK]" >&2; exit 2; }
case $1 in */*) exe=$1 ;; *) exe=./$1 ;; esac
check=${2:-$(cd "$(dirname "$0")" && pwd)/bench_check.sh}

out=$(mktemp /tmp/perf_check.XXXXXX.json)
trap 'rm -f "$out"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

"$exe" --emit-json "$out" --scale 0.05 --min-time 0.01 --jobs 2 >/dev/null
"$check" --validate "$out"

json_get() { # key
  awk -F'"' -v k="$1" '$2 == k { v = $3; gsub(/[^0-9.eE+-]/, "", v); print v; exit }' "$out"
}

fail=0
ge() { # name value floor
  if [ -z "$2" ]; then
    echo "  PERF $1: missing value" >&2; fail=1
  elif awk -v v="$2" -v f="$3" 'BEGIN { exit !(v + 0 >= f + 0) }'; then
    echo "  ok  $1: $2 >= $3"
  else
    echo "  PERF $1 FAILED: $2 < $3" >&2; fail=1
  fi
}
ratio() { # name numerator-key denominator-key factor
  n=$(json_get "$2"); d=$(json_get "$3")
  if [ -z "$n" ] || [ -z "$d" ]; then
    echo "  PERF $1: missing key ($2 or $3)" >&2; fail=1
  elif awk -v n="$n" -v d="$d" -v f="$4" 'BEGIN { exit !(n + 0 >= d * f) }'; then
    echo "  ok  $1: $n >= $4 * $d"
  else
    echo "  PERF $1 FAILED: $n < $4 * $d" >&2; fail=1
  fi
}

echo "perf_check: live pool sanity (jobs=2, smoke scale)"
ge "pool tasks dispatched"        "$(json_get par.tasks)" 1
ge "pool epochs (3 codec passes)" "$(json_get par.epochs)" 3
ge "pool jobs gauge"              "$(json_get par.jobs)" 2
ge "queue-depth histogram"        "$(json_get par.queue_depth_count)" 1
ge "worker busy time"             "$(json_get par.worker_busy_us_sum)" 1
ratio "samc live parallel decompress" \
  samc-mips.decompress_parallel_mbps samc-mips.decompress_serial_mbps 0.5
ratio "sadc live parallel decompress" \
  sadc-mips.decompress_parallel_mbps sadc-mips.decompress_serial_mbps 0.5
ratio "byte-huffman live parallel decompress" \
  byte-huffman.decompress_parallel_mbps byte-huffman.decompress_mbps 0.5

if [ "$fail" -ne 0 ]; then
  echo "perf_check: FAILED" >&2
  exit 1
fi
echo "perf_check: PASS"
