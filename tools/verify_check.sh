#!/bin/sh
# Gate for the differential verification harness (`ccomp verify`):
# the fast sweep over every equivalence pair must come back clean, and
# the golden-corpus tripwire must actually trip — a corrupted artifact
# or input byte has to turn into a nonzero exit, or the corpus is not
# protecting the wire format at all. Machine-independent, so bin/dune
# wires it into `dune runtest`.
#
# usage: verify_check.sh [--full] CCOMP_EXE GOLDEN_DIR
#
# Default is the fast tier (one profile, small scale — the runtest
# budget); --full runs the whole default sweep (gcc+swim, both ISAs,
# scale 0.12), the bench_check-style pre-merge gate.
set -eu

tier=--fast
if [ "${1:-}" = --full ]; then tier=; shift; fi
[ $# -eq 2 ] || { echo "usage: verify_check.sh [--full] CCOMP_EXE GOLDEN_DIR" >&2; exit 2; }
case $1 in */*) ccomp=$1 ;; *) ccomp=./$1 ;; esac
golden=$2
[ -r "$golden/MANIFEST" ] || { echo "verify_check: no golden corpus at $golden" >&2; exit 2; }

dir=$(mktemp -d /tmp/verify_check.XXXXXX)
trap 'rm -rf "$dir"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM
trap 'exit 129' HUP

fail() { echo "verify_check: $*" >&2; exit 1; }

# -- 1: the sweep (all pairs, golden + fresh inputs) is clean -----------
# shellcheck disable=SC2086 # $tier is deliberately empty or one flag
"$ccomp" verify $tier --golden "$golden" --repro-dir "$dir" > "$dir/sweep.log" 2>&1 \
  || fail "sweep diverged: $(tail -n 5 "$dir/sweep.log")"
grep -q ', 0 divergences$' "$dir/sweep.log" \
  || fail "sweep did not report zero divergences: $(tail -n 1 "$dir/sweep.log")"

# -- 2: a corrupted artifact byte must fail the corpus check ------------
# (flip a byte past the header so the damage lands in the payload, not
# in the magic — the tripwire has to catch content drift, not just a
# torn file)
cp "$golden"/MANIFEST "$golden"/*.bin "$golden"/*.secf "$dir/"
art=$(ls "$dir"/*.secf | head -n 1)
dd if="$art" bs=1 skip=40 count=1 2>/dev/null | od -An -tu1 | tr -d ' ' > "$dir/byte"
printf '\\%03o' $((($(cat "$dir/byte") + 1) % 256)) | xargs printf \
  | dd of="$art" bs=1 seek=40 count=1 conv=notrunc 2>/dev/null
if "$ccomp" verify --golden-only --golden "$dir" > "$dir/corrupt.log" 2>&1; then
  fail "a corrupted golden artifact passed the corpus check"
fi

# -- 3: a corrupted input byte must fail its manifest CRC ---------------
rm -rf "$dir"/*.secf "$dir"/*.bin "$dir"/MANIFEST
cp "$golden"/MANIFEST "$golden"/*.bin "$golden"/*.secf "$dir/"
bin=$(ls "$dir"/*.bin | head -n 1)
dd if="$bin" bs=1 skip=10 count=1 2>/dev/null | od -An -tu1 | tr -d ' ' > "$dir/byte"
printf '\\%03o' $((($(cat "$dir/byte") + 1) % 256)) | xargs printf \
  | dd of="$bin" bs=1 seek=10 count=1 conv=notrunc 2>/dev/null
if "$ccomp" verify --golden-only --golden "$dir" > "$dir/corrupt2.log" 2>&1; then
  fail "a corrupted golden input passed the corpus check"
fi

echo "verify_check: OK (clean sweep, artifact tripwire, input tripwire)"
